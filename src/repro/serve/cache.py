"""Result cache: memoizing answered slice queries across the serving loop.

OLAP workloads are highly repetitive (the observation Aouiche & Darmont
build their mining-based selection on), so the single most effective
serving optimization after routing is to not execute a repeated query at
all.  :class:`ResultCache` stores finished query results keyed on the
canonical concrete-query form — the generic :class:`SliceQuery` pattern
plus the sorted ``(attr, value)`` bindings — under an LRU eviction policy
with a frequency-aware admission filter (a TinyLFU-style sketch: a new
result only displaces the least-recently-used entry when it has been
*asked for* at least as often, so one-off queries cannot flush a hot
working set).

Correctness is generation-tagged: every cached result is stored under the
``(serving generation, catalog version)`` tag that produced it.  A hot
swap bumps the serving generation and a fact-table delta applied through
:func:`repro.engine.maintenance.apply_delta` bumps the catalog version,
so the first lookup after either sees a stale tag and drops the whole
cache — a reselection or a maintenance delta can never serve stale rows.
Late inserts from a worker that read the old state race-safely miss: a
``put`` whose tag disagrees with the cache's current tag is discarded.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Admission-sketch aging period: once this many lookups have been
#: counted, every frequency halves (keeps the sketch adaptive to shifts).
SKETCH_AGING_PERIOD = 100_000

#: Fixed per-entry overhead estimate, in bytes (key, dict slots, tag).
ENTRY_OVERHEAD_BYTES = 200

#: Estimated bytes per result group (key tuple + float payload).
GROUP_BYTES = 48


@dataclass(frozen=True)
class CachedResult:
    """One finished query: the answer plus the cost accounting it had.

    ``groups`` is shared, never copied — consumers treat results as
    read-only (the same contract executor results already have).
    """

    structure: str
    predicted_rows: float
    actual_rows: int
    groups: Dict[tuple, float]

    @property
    def estimated_bytes(self) -> int:
        return ENTRY_OVERHEAD_BYTES + GROUP_BYTES * len(self.groups)


def result_key(entry) -> tuple:
    """The canonical cache key of a concrete query.

    ``LogEntry.values`` is already the sorted ``(attr, value)`` tuple, so
    two textually different arrivals of the same slice query collapse to
    one key.
    """
    return (entry.query, entry.values)


class ResultCache:
    """LRU result cache with frequency-aware admission and tag
    invalidation.

    Parameters
    ----------
    capacity_bytes:
        Estimated-size budget (:attr:`CachedResult.estimated_bytes`);
        inserting past it evicts least-recently-used entries first.
    max_entries:
        Optional hard cap on the entry count (useful in tests).
    admission:
        ``True`` (default) enables the frequency filter: when the cache
        is full, a candidate only displaces the LRU victim if the sketch
        has counted it at least as often.  ``False`` always admits
        (plain LRU).
    """

    def __init__(
        self,
        capacity_bytes: int = 16 * 2**20,
        max_entries: Optional[int] = None,
        admission: bool = True,
    ):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be > 0, got {capacity_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.capacity_bytes = int(capacity_bytes)
        self.max_entries = max_entries
        self.admission = admission
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()
        self._bytes = 0
        self._tag: Optional[Tuple[int, int]] = None
        self._freq: Dict[int, int] = {}
        self._freq_total = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------ frequency

    def _count(self, key: tuple) -> int:
        """Bump and return the key's sketch frequency (lock held)."""
        slot = hash(key)
        count = self._freq.get(slot, 0) + 1
        self._freq[slot] = count
        self._freq_total += 1
        if self._freq_total >= SKETCH_AGING_PERIOD:
            self._freq = {k: v // 2 for k, v in self._freq.items() if v > 1}
            self._freq_total = sum(self._freq.values())
        return count

    def _frequency(self, key: tuple) -> int:
        return self._freq.get(hash(key), 0)

    # ----------------------------------------------------------- tag checks

    def ensure_tag(self, tag: Tuple[int, int]) -> None:
        """Align the cache with the serving tag, dropping stale entries.

        ``tag`` is ``(serving generation, catalog version)``; the first
        call after a hot swap or a maintenance delta sees a different tag
        and clears everything.
        """
        with self._lock:
            if self._tag == tag:
                return
            if self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._bytes = 0
            self._tag = tag

    def invalidate(self) -> None:
        """Drop every cached result (explicit hook for swaps/deltas)."""
        with self._lock:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._bytes = 0
            self._tag = None

    # -------------------------------------------------------------- get/put

    def get(self, key: tuple, tag: Tuple[int, int]) -> Optional[CachedResult]:
        """The cached result, or ``None`` on a miss (which also trains
        the admission sketch)."""
        with self._lock:
            if self._tag != tag:
                # caller should have run ensure_tag; treat as a miss
                self._count(key)
                self.misses += 1
                return None
            result = self._entries.get(key)
            if result is None:
                self._count(key)
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: tuple, result: CachedResult, tag: Tuple[int, int]) -> bool:
        """Insert a finished result; returns whether it was admitted.

        Inserts tagged with a stale ``tag`` (a worker that read the old
        serving state) are silently dropped.  A full cache consults the
        admission sketch before displacing the LRU victim.
        """
        size = result.estimated_bytes
        with self._lock:
            if self._tag != tag:
                return False
            if key in self._entries:
                self._bytes -= self._entries[key].estimated_bytes
                self._entries[key] = result
                self._entries.move_to_end(key)
                self._bytes += size
                return True
            if size > self.capacity_bytes:
                self.rejected += 1
                return False
            while self._entries and (
                self._bytes + size > self.capacity_bytes
                or (
                    self.max_entries is not None
                    and len(self._entries) >= self.max_entries
                )
            ):
                victim_key = next(iter(self._entries))
                if self.admission and self._frequency(key) < self._frequency(
                    victim_key
                ):
                    self.rejected += 1
                    return False
                __, victim = self._entries.popitem(last=False)
                self._bytes -= victim.estimated_bytes
                self.evictions += 1
            self._entries[key] = result
            self._bytes += size
            return True

    # ----------------------------------------------------------------- misc

    def stats(self) -> dict:
        """Counter snapshot for the telemetry document's ``cache`` block."""
        with self._lock:
            return {
                "enabled": True,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "invalidations": self.invalidations,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, capacity_bytes={self.capacity_bytes})"
        )


def empty_cache_stats() -> dict:
    """The ``cache`` telemetry block of a server with caching disabled."""
    return {
        "enabled": False,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "rejected": 0,
        "invalidations": 0,
        "entries": 0,
        "bytes": 0,
        "capacity_bytes": 0,
    }
