"""Per-query serving telemetry: latency, rows scanned, routing hits.

Every served query contributes one observation: which structure answered
it (or ``raw`` on a fallback), how long it took, how many rows the
executor actually processed, and how many the linear cost model
predicted (``|C| / |E|``).  The collector aggregates those under a lock
— servers call it from the concurrent replay driver — and snapshots to
a stable JSON document the CI smoke validates.

Latency percentiles are exact (computed from the retained samples, not
interpolated from buckets); the histogram is log-spaced buckets for
eyeballing the distribution shape.

Collectors are **mergeable**: the concurrent front-end gives every
worker its own collector (no cross-worker lock traffic on the hot path)
and combines them with :meth:`TelemetryCollector.merge` when reporting —
counters add exactly, histograms add bucket-wise, and percentiles are
recomputed nearest-rank over the union of the retained samples, so a
merged report is indistinguishable from one collector having seen every
query.

Schema v2 added the ``cache`` block (result-cache hit/eviction counters)
and ``merged_from`` (how many collectors the document combines).
Schema v3 added the ``resilience`` block: per-structure executor errors,
raw-cube rescues, circuit-breaker trips/resets/short-circuits, worker
crashes and restarts, re-advise failures, fleet retries and deadline
timeouts — the counters the chaos harness reconciles exactly against
the faults it injected.  Schema v4 adds the ``fleet`` block: per-replica
routed-hit and misroute counters for the cost-routed dispatch mode (a
routed hit lands on the replica the routing table designated; a
misroute was served correctly but elsewhere, after failover or a
strike).  v1–v3 documents are still accepted by
:func:`validate_telemetry` through :func:`upgrade_telemetry`, which
fills newer fields with their empty defaults.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

TELEMETRY_SCHEMA_VERSION = 4

#: Scalar counters of the v3 ``resilience`` block (``executor_errors``
#: is the one non-scalar member: a per-structure error dict).
RESILIENCE_COUNTER_FIELDS = (
    "raw_rescues",
    "breaker_trips",
    "breaker_resets",
    "breaker_short_circuits",
    "worker_crashes",
    "worker_restarts",
    "readvise_failures",
    "retries",
    "deadline_timeouts",
)


def empty_resilience_stats() -> dict:
    """The all-zero ``resilience`` block (healthy run, no faults)."""
    block = {"executor_errors": {}}
    for field in RESILIENCE_COUNTER_FIELDS:
        block[field] = 0
    return block


#: Per-replica counter dicts of the v4 ``fleet`` block.  Keys inside
#: each dict are replica ids as strings (JSON object keys), values are
#: counts.
FLEET_COUNTER_FIELDS = ("routed_hits", "misroutes")


def empty_fleet_stats() -> dict:
    """The empty ``fleet`` block (no routed dispatch, or none yet)."""
    return {field: {} for field in FLEET_COUNTER_FIELDS}

#: Log-spaced latency histogram bucket upper bounds, in microseconds.
LATENCY_BUCKETS_US = (
    10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
    100_000.0, 300_000.0, 1_000_000.0, float("inf"),
)

#: Structure label recorded for fallback-to-raw-cube executions.
RAW_LABEL = "raw"


def _percentile(samples: List[float], q: float) -> float:
    """Exact (nearest-rank) percentile of the samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _empty_cache_block() -> dict:
    from repro.serve.cache import empty_cache_stats

    return empty_cache_stats()


class TelemetryCollector:
    """Thread-safe aggregator of per-query serving observations."""

    def __init__(self, keep_records: bool = True):
        self._lock = threading.Lock()
        self.keep_records = keep_records
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self._hits: Dict[str, int] = {}
            self._fallbacks = 0
            self._queries = 0
            self._exact = 0
            self._predicted_total = 0.0
            self._actual_total = 0.0
            self._max_abs_error = 0.0
            self._latencies_us: List[float] = []
            self._buckets = [0] * len(LATENCY_BUCKETS_US)
            self._records: List[dict] = []
            self._swaps = 0
            self._merged_from = 1
            self._executor_errors: Dict[str, int] = {}
            self._resilience: Dict[str, int] = {
                field: 0 for field in RESILIENCE_COUNTER_FIELDS
            }
            self._fleet: Dict[str, Dict[str, int]] = empty_fleet_stats()

    # -------------------------------------------------------------- record

    def record(
        self,
        pattern: str,
        structure: str,
        latency_us: float,
        predicted_rows: float,
        actual_rows: int,
        fallback: bool = False,
    ) -> None:
        """One served query.  ``structure`` is the answering structure's
        label (:data:`RAW_LABEL` for a raw-cube fallback)."""
        with self._lock:
            self._record_locked(
                pattern, structure, latency_us, predicted_rows, actual_rows,
                fallback,
            )

    def record_many(self, observations: Iterable[tuple]) -> None:
        """Record a batch of ``(pattern, structure, latency_us,
        predicted_rows, actual_rows, fallback)`` tuples under one lock
        acquisition (the batched server's per-batch fast path)."""
        with self._lock:
            for observation in observations:
                self._record_locked(*observation)

    def _record_locked(
        self,
        pattern: str,
        structure: str,
        latency_us: float,
        predicted_rows: float,
        actual_rows: int,
        fallback: bool = False,
    ) -> None:
        error = abs(float(actual_rows) - float(predicted_rows))
        self._queries += 1
        self._hits[structure] = self._hits.get(structure, 0) + 1
        if fallback:
            self._fallbacks += 1
        if error == 0.0:
            self._exact += 1
        self._max_abs_error = max(self._max_abs_error, error)
        self._predicted_total += float(predicted_rows)
        self._actual_total += float(actual_rows)
        self._latencies_us.append(float(latency_us))
        for pos, bound in enumerate(LATENCY_BUCKETS_US):
            if latency_us <= bound:
                self._buckets[pos] += 1
                break
        if self.keep_records:
            self._records.append(
                {
                    "pattern": pattern,
                    "structure": structure,
                    "predicted_rows": float(predicted_rows),
                    "actual_rows": int(actual_rows),
                    "fallback": bool(fallback),
                }
            )

    def note_swap(self) -> None:
        """Count a hot selection swap (shown in the snapshot header)."""
        with self._lock:
            self._swaps += 1

    # --------------------------------------------------------- resilience

    def _bump(self, field: str, amount: int = 1) -> None:
        with self._lock:
            self._resilience[field] += amount

    def note_executor_error(self, structure: str) -> None:
        """One executor error against a materialized structure (before
        the raw-cube rescue)."""
        with self._lock:
            self._executor_errors[structure] = (
                self._executor_errors.get(structure, 0) + 1
            )

    def note_raw_rescue(self) -> None:
        """A failed structure execution re-answered from the raw cube."""
        self._bump("raw_rescues")

    def note_breaker_trip(self) -> None:
        self._bump("breaker_trips")

    def note_breaker_reset(self) -> None:
        self._bump("breaker_resets")

    def note_breaker_short_circuit(self) -> None:
        """An execution skipped a tripped structure straight to raw."""
        self._bump("breaker_short_circuits")

    def note_worker_crash(self) -> None:
        self._bump("worker_crashes")

    def note_worker_restart(self) -> None:
        self._bump("worker_restarts")

    def note_readvise_failure(self) -> None:
        """A background re-advise (or its hot swap) crashed; the old
        generation kept serving."""
        self._bump("readvise_failures")

    def note_retry(self) -> None:
        self._bump("retries")

    def note_deadline_timeout(self) -> None:
        self._bump("deadline_timeouts")

    # -------------------------------------------------------------- fleet

    def _bump_fleet(self, field: str, replica_id) -> None:
        key = str(replica_id)
        with self._lock:
            counters = self._fleet[field]
            counters[key] = counters.get(key, 0) + 1

    def note_routed_hit(self, replica_id) -> None:
        """A query answered by the replica the routing table designated."""
        self._bump_fleet("routed_hits", replica_id)

    def note_misroute(self, replica_id) -> None:
        """A query answered correctly but *not* by its designated replica
        (failover, strike, or a busy head of the ranking)."""
        self._bump_fleet("misroutes", replica_id)

    def fleet_stats(self) -> dict:
        """A copy of the fleet block (per-replica routed-hit/misroute
        counters, replica ids as string keys)."""
        with self._lock:
            return {
                field: dict(sorted(self._fleet[field].items()))
                for field in FLEET_COUNTER_FIELDS
            }

    def resilience_stats(self) -> dict:
        """A copy of the resilience block (executor errors + counters)."""
        with self._lock:
            block = {"executor_errors": dict(sorted(self._executor_errors.items()))}
            block.update(self._resilience)
            return block

    def latencies(self) -> List[float]:
        """A copy of the retained latency samples (microseconds)."""
        with self._lock:
            return list(self._latencies_us)

    # --------------------------------------------------------------- merge

    def _state_copy(self) -> dict:
        """A consistent copy of the mutable aggregates (for merging)."""
        with self._lock:
            return {
                "hits": dict(self._hits),
                "fallbacks": self._fallbacks,
                "queries": self._queries,
                "exact": self._exact,
                "predicted_total": self._predicted_total,
                "actual_total": self._actual_total,
                "max_abs_error": self._max_abs_error,
                "latencies_us": list(self._latencies_us),
                "buckets": list(self._buckets),
                "records": list(self._records),
                "swaps": self._swaps,
                "merged_from": self._merged_from,
                "keep_records": self.keep_records,
                "executor_errors": dict(self._executor_errors),
                "resilience": dict(self._resilience),
                "fleet": {
                    field: dict(self._fleet[field])
                    for field in FLEET_COUNTER_FIELDS
                },
            }

    def absorb(self, other: "TelemetryCollector") -> None:
        """Fold another collector's observations into this one.

        Counters and row totals add exactly; histograms add bucket-wise;
        the retained latency samples concatenate, so percentile queries
        on the merged collector are exact nearest-rank over the union.
        Per-query records concatenate only when both sides retained them
        — otherwise the merged collector drops records (a partial record
        list would violate the one-record-per-query invariant).
        """
        state = other._state_copy()
        with self._lock:
            for structure, count in state["hits"].items():
                self._hits[structure] = self._hits.get(structure, 0) + count
            self._fallbacks += state["fallbacks"]
            self._queries += state["queries"]
            self._exact += state["exact"]
            self._predicted_total += state["predicted_total"]
            self._actual_total += state["actual_total"]
            self._max_abs_error = max(self._max_abs_error, state["max_abs_error"])
            self._latencies_us.extend(state["latencies_us"])
            for pos, count in enumerate(state["buckets"]):
                self._buckets[pos] += count
            self._swaps += state["swaps"]
            self._merged_from += state["merged_from"]
            for structure, count in state["executor_errors"].items():
                self._executor_errors[structure] = (
                    self._executor_errors.get(structure, 0) + count
                )
            for field, count in state["resilience"].items():
                self._resilience[field] += count
            for field in FLEET_COUNTER_FIELDS:
                counters = self._fleet[field]
                for replica_id, count in state["fleet"][field].items():
                    counters[replica_id] = counters.get(replica_id, 0) + count
            if self.keep_records and state["keep_records"]:
                self._records.extend(state["records"])
            else:
                self.keep_records = False
                self._records = []

    @classmethod
    def merge(
        cls, collectors: Iterable["TelemetryCollector"]
    ) -> "TelemetryCollector":
        """Combine per-worker collectors into one validated aggregate.

        The merged collector reports ``merged_from`` = the number of
        inputs; an empty iterable merges to a fresh (empty) collector.
        """
        collectors = list(collectors)
        merged = cls(keep_records=all(c.keep_records for c in collectors))
        merged._merged_from = 0
        for collector in collectors:
            merged.absorb(collector)
        if not collectors:
            merged._merged_from = 1
        return merged

    # ------------------------------------------------------------ snapshot

    @property
    def queries(self) -> int:
        with self._lock:
            return self._queries

    @property
    def fallbacks(self) -> int:
        with self._lock:
            return self._fallbacks

    @property
    def merged_from(self) -> int:
        with self._lock:
            return self._merged_from

    def records(self) -> List[dict]:
        """A copy of the retained per-query records."""
        with self._lock:
            return list(self._records)

    def percentile(self, q: float) -> float:
        """Exact nearest-rank latency percentile over everything recorded
        (including absorbed collectors)."""
        with self._lock:
            return _percentile(self._latencies_us, q)

    def snapshot(
        self, meta: Optional[dict] = None, cache: Optional[dict] = None
    ) -> dict:
        """The full telemetry document (see :func:`validate_telemetry`).

        ``cache`` attaches the server's result-cache counters; omitted,
        the document reports a disabled cache.
        """
        with self._lock:
            samples = list(self._latencies_us)
            doc = {
                "schema_version": TELEMETRY_SCHEMA_VERSION,
                "queries": self._queries,
                "fallbacks": self._fallbacks,
                "swaps": self._swaps,
                "merged_from": self._merged_from,
                "hits": dict(sorted(self._hits.items())),
                "cache": dict(cache) if cache is not None else _empty_cache_block(),
                "resilience": {
                    "executor_errors": dict(
                        sorted(self._executor_errors.items())
                    ),
                    **self._resilience,
                },
                "fleet": {
                    field: dict(sorted(self._fleet[field].items()))
                    for field in FLEET_COUNTER_FIELDS
                },
                "latency_us": {
                    "p50": _percentile(samples, 0.50),
                    "p99": _percentile(samples, 0.99),
                    "mean": (sum(samples) / len(samples)) if samples else 0.0,
                    "max": max(samples) if samples else 0.0,
                    "histogram": [
                        {"le": bound, "count": count}
                        for bound, count in zip(LATENCY_BUCKETS_US, self._buckets)
                    ],
                },
                "cost": {
                    "predicted_rows": self._predicted_total,
                    "actual_rows": self._actual_total,
                    "exact_matches": self._exact,
                    "max_abs_error": self._max_abs_error,
                },
            }
            if self.keep_records:
                doc["records"] = list(self._records)
        if meta is not None:
            doc["meta"] = dict(meta)
        return doc


def upgrade_telemetry(document: dict) -> dict:
    """Upgrade a schema-v1/v2/v3 telemetry document to v4 (compat shim).

    v1 predates the result cache and mergeable collectors; v2 predates
    the resilience counters; v3 predates the fleet routing counters.
    The upgrade fills each missing block with its empty default
    (disabled cache, ``merged_from`` = 1, all-zero resilience, empty
    fleet — older documents were recorded before the accounting
    existed, which is indistinguishable from a run without those
    events).  v4 documents pass through unchanged (the same object).
    Anything else is left for :func:`validate_telemetry` to reject.
    """
    if not isinstance(document, dict) or document.get("schema_version") not in (
        1,
        2,
        3,
    ):
        return document
    upgraded = dict(document)
    upgraded["schema_version"] = TELEMETRY_SCHEMA_VERSION
    upgraded.setdefault("cache", _empty_cache_block())
    upgraded.setdefault("merged_from", 1)
    upgraded.setdefault("resilience", empty_resilience_stats())
    upgraded.setdefault("fleet", empty_fleet_stats())
    return upgraded


def validate_telemetry(document: dict) -> dict:
    """Validate a telemetry snapshot; returns the validated document.

    Checks the schema version, required fields and types, histogram
    integrity (bucket counts sum to the query count), and the hit/
    fallback accounting.  Raises ``ValueError`` with a one-line message
    on the first violation — this is what the CI serving smoke runs
    against the uploaded artifact.  Schema-v1/v2/v3 documents are
    upgraded through :func:`upgrade_telemetry` first and the upgraded
    copy is returned; v4 documents are returned unchanged.
    """
    if not isinstance(document, dict):
        raise ValueError("telemetry must be a JSON object")
    document = upgrade_telemetry(document)
    if document.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        raise ValueError(
            f"telemetry schema_version must be {TELEMETRY_SCHEMA_VERSION} "
            f"(or 1/2/3, upgraded), got {document.get('schema_version')!r}"
        )
    for field, kind in (
        ("queries", int),
        ("fallbacks", int),
        ("swaps", int),
        ("merged_from", int),
        ("hits", dict),
        ("cache", dict),
        ("resilience", dict),
        ("fleet", dict),
        ("latency_us", dict),
        ("cost", dict),
    ):
        if not isinstance(document.get(field), kind):
            raise ValueError(f"telemetry field {field!r} must be {kind.__name__}")
    queries = document["queries"]
    if queries < 0 or document["fallbacks"] < 0:
        raise ValueError("telemetry counts must be nonnegative")
    if document["fallbacks"] > queries:
        raise ValueError("telemetry fallbacks exceed the query count")
    if document["merged_from"] < 1:
        raise ValueError("telemetry merged_from must be >= 1")
    if sum(document["hits"].values()) != queries:
        raise ValueError("telemetry hit counts do not sum to the query count")
    if document["hits"].get(RAW_LABEL, 0) != document["fallbacks"]:
        raise ValueError("telemetry raw hits disagree with the fallback count")
    cache = document["cache"]
    for field in ("hits", "misses", "evictions", "rejected", "invalidations"):
        value = cache.get(field)
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"cache.{field} must be a nonnegative integer")
    if not cache.get("enabled", False) and (cache["hits"] or cache["misses"]):
        raise ValueError("cache counters nonzero on a disabled cache")
    resilience = document["resilience"]
    errors = resilience.get("executor_errors")
    if not isinstance(errors, dict):
        raise ValueError("resilience.executor_errors must be a dict")
    for structure, count in errors.items():
        if not isinstance(count, int) or count < 0:
            raise ValueError(
                f"resilience.executor_errors[{structure!r}] must be a "
                "nonnegative integer"
            )
    for field in RESILIENCE_COUNTER_FIELDS:
        value = resilience.get(field)
        if not isinstance(value, int) or value < 0:
            raise ValueError(
                f"resilience.{field} must be a nonnegative integer"
            )
    if resilience["raw_rescues"] > sum(errors.values()):
        raise ValueError(
            "resilience.raw_rescues exceed the recorded executor errors"
        )
    fleet = document["fleet"]
    for field in FLEET_COUNTER_FIELDS:
        counters = fleet.get(field)
        if not isinstance(counters, dict):
            raise ValueError(f"fleet.{field} must be a dict")
        for replica_id, count in counters.items():
            if not isinstance(count, int) or count < 0:
                raise ValueError(
                    f"fleet.{field}[{replica_id!r}] must be a nonnegative "
                    "integer"
                )
    routed_total = sum(
        sum(fleet[field].values()) for field in FLEET_COUNTER_FIELDS
    )
    if routed_total > queries:
        raise ValueError(
            "fleet routed-hit/misroute counters exceed the query count"
        )
    latency = document["latency_us"]
    for field in ("p50", "p99", "mean", "max"):
        value = latency.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"latency_us.{field} must be a nonnegative number")
    histogram = latency.get("histogram")
    if not isinstance(histogram, list) or len(histogram) != len(LATENCY_BUCKETS_US):
        raise ValueError(
            f"latency_us.histogram must have {len(LATENCY_BUCKETS_US)} buckets"
        )
    if sum(bucket.get("count", 0) for bucket in histogram) != queries:
        raise ValueError("latency histogram counts do not sum to the query count")
    cost = document["cost"]
    for field in ("predicted_rows", "actual_rows", "exact_matches", "max_abs_error"):
        value = cost.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"cost.{field} must be a nonnegative number")
    if cost["exact_matches"] > queries:
        raise ValueError("cost.exact_matches exceeds the query count")
    records = document.get("records")
    if records is not None:
        if not isinstance(records, list) or len(records) != queries:
            raise ValueError("records must list one entry per served query")
        for pos, record in enumerate(records):
            if not isinstance(record, dict) or "actual_rows" not in record:
                raise ValueError(f"records[{pos}] is not a per-query record")
    return document
