"""Offer sinks: the protocol between stage scans and the reduction.

Every stage loop offers candidates ``(ids, benefit, space)`` in a
deterministic *canonical order* and keeps an incumbent under the
canonical tie-break rule: the incumbent is displaced only by a ratio
strictly greater than ``incumbent · (1 + RATIO_RTOL)``.  Running a scan
against a :class:`ChainSink` is exactly that serial rule.

Parallelism rests on the *chain-equivalence lemma*: an offer whose ratio
does not strictly exceed the running maximum of the offers before it
(within the same contiguous slice of the canonical order) can never
displace any incumbent the full chain could hold at that point — the
earlier same-slice offer with ratio ``>=`` its own already forced the
incumbent to at least ``ratio / (1 + RATIO_RTOL)``.  So a worker scanning
one slice only needs to report its *strict prefix maxima*
(:class:`RecorderSink` — note: strictly greater, **no** tolerance), and
the master replaying those subsequences slice-by-slice through a fresh
:class:`ChainSink` reaches the identical final incumbent, bit for bit.

Both sinks also expose the pruning interface the subset searches use
(:attr:`prune_ratio`, :meth:`can_displace`).  The serial chain prunes
against the ``(1 + RATIO_RTOL)`` displacement threshold; the recorder
must prune against its *local maximum with no tolerance* — pruning with
the serial threshold could drop a strict local prefix maximum inside the
tolerance band, which a master chain seeded by other slices might still
need.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.benefit import RATIO_RTOL

Offer = Tuple[tuple, float, float]


class ChainSink:
    """The canonical greedy incumbent chain (deterministic tie-break:
    first candidate found at a strictly better ratio wins)."""

    __slots__ = ("ratio", "benefit", "space", "ids")

    def __init__(self) -> None:
        self.ratio = 0.0
        self.benefit = 0.0
        self.space = 0.0
        self.ids: Optional[tuple] = None

    def offer(self, ids: tuple, benefit: float, space: float) -> None:
        if benefit <= 0.0 or space <= 0.0:
            return
        ratio = benefit / space
        if self.ids is None or ratio > self.ratio * (1 + RATIO_RTOL):
            self.ratio = ratio
            self.benefit = benefit
            self.space = space
            self.ids = ids

    @property
    def prune_ratio(self) -> float:
        """Ratios at or below this provably cannot displace the incumbent."""
        return self.ratio * (1 + RATIO_RTOL)

    def can_displace(self, ub_benefit: float, ub_space: float) -> bool:
        """Whether a candidate bounded by ``ub_benefit / ub_space`` could
        still displace the incumbent (the subset-search prune test)."""
        return ub_benefit > self.ratio * ub_space * (1 + RATIO_RTOL)


class RecorderSink:
    """Records the strict prefix maxima of one slice's offer stream.

    Accepts the same ``offer`` calls a :class:`ChainSink` does, but keeps
    every offer whose ratio is *strictly* greater than the running local
    maximum (no tolerance), in order.  Feeding :attr:`offers` back into a
    :class:`ChainSink` — after the offers of earlier slices — reproduces
    the full serial chain's outcome exactly (see module docstring).
    """

    __slots__ = ("ratio", "ids", "offers")

    def __init__(self) -> None:
        self.ratio = 0.0
        self.ids: Optional[tuple] = None
        self.offers: List[Offer] = []

    def offer(self, ids: tuple, benefit: float, space: float) -> None:
        if benefit <= 0.0 or space <= 0.0:
            return
        ratio = benefit / space
        if self.ids is None or ratio > self.ratio:
            self.ratio = ratio
            self.ids = ids
            self.offers.append((ids, benefit, space))

    @property
    def prune_ratio(self) -> float:
        # no tolerance: anything at the local max exactly is prunable
        # (it would not be recorded), anything above must be kept
        return self.ratio

    def can_displace(self, ub_benefit: float, ub_space: float) -> bool:
        return ub_benefit > self.ratio * ub_space
