"""Parallel stage evaluation over a shared-memory cost store.

The package splits one greedy *stage* — evaluate every candidate
view/index bundle against the current selection, keep the max-ratio
one — across a process pool:

:mod:`repro.parallel.sinks`
    The offer protocol: the serial incumbent chain (:class:`ChainSink`)
    and the worker-side strict-prefix-maxima recorder
    (:class:`RecorderSink`).  Replaying the recorded offers through a
    fresh chain reproduces the serial outcome bit-for-bit.
:mod:`repro.parallel.shm`
    ``multiprocessing.shared_memory`` packing of the engine's compiled
    arrays and the per-stage mutable state (best costs, selection mask,
    maintained single-benefit cache) — zero-copy worker attach, no
    per-stage pickling of the matrix.
:mod:`repro.parallel.worker`
    The pool worker: a duck-typed read-only view of the engine over the
    shared segments, running the *same* scan code the serial algorithms
    use.
:mod:`repro.parallel.evaluator`
    :class:`StageEvaluator` (serial; the default) and
    :class:`ParallelStageEvaluator` (shards candidates across the pool
    and reduces deterministically); :func:`make_evaluator` resolves the
    ``workers`` parameter (``None``/1 = serial, 0 = auto, ``N >= 2`` =
    forced) against the ``REPRO_WORKERS`` environment variable and the
    auto-fallback candidate-count threshold.
"""

from repro.parallel.evaluator import (
    PARALLEL_MIN_STRUCTURES,
    ParallelStageEvaluator,
    StageEvaluator,
    make_evaluator,
    resolve_workers,
)
from repro.parallel.shm import SHM_PREFIX, leaked_segments
from repro.parallel.sinks import ChainSink, RecorderSink

__all__ = [
    "PARALLEL_MIN_STRUCTURES",
    "SHM_PREFIX",
    "ChainSink",
    "ParallelStageEvaluator",
    "RecorderSink",
    "StageEvaluator",
    "leaked_segments",
    "make_evaluator",
    "resolve_workers",
]
