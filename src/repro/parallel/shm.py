"""Shared-memory packing of numpy arrays for the worker pool.

A :class:`ShmPack` lays a dict of arrays out in one
``multiprocessing.shared_memory`` segment (64-byte aligned) and hands
out a picklable *spec* from which workers re-attach zero-copy views.

Lifetime contract: the **master owns the segment** — it unlinks on every
exit path (the evaluator's idempotent ``close()``, called from the
algorithm's ``finally``, the run context's stop drain, and ``atexit``).
Workers only ever attach; :meth:`ShmPack.attach` immediately deregisters
the segment from the process's ``resource_tracker`` so a worker exiting
(or, under the spawn start method, its private tracker) can neither
unlink the master's live segment nor warn about it.  Segment names carry
:data:`SHM_PREFIX` so tests can scan ``/dev/shm`` for leaks.
"""

from __future__ import annotations

import itertools
import os
import secrets
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List

import numpy as np

#: Prefix of every segment this package creates (leak scans key on it).
SHM_PREFIX = "repro-shm-"

_ALIGN = 64
_counter = itertools.count()


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _segment_name(tag: str) -> str:
    return f"{SHM_PREFIX}{tag}-{os.getpid()}-{next(_counter)}-{secrets.token_hex(4)}"


def leaked_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Names of live shared-memory segments created by this package.

    Scans ``/dev/shm`` (the Linux backing directory).  On platforms
    without it the scan degrades to an empty list — the unlink paths are
    still exercised, only the leak *assertion* loses teeth there.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux only
        return []
    return sorted(p.name for p in root.glob(prefix + "*"))


class ShmPack:
    """A named set of numpy arrays in one shared-memory segment."""

    def __init__(self, shm, arrays: Dict[str, np.ndarray], spec: dict, owner: bool):
        self._shm = shm
        self.arrays = arrays
        self.spec = spec
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray], tag: str) -> "ShmPack":
        """Copy ``arrays`` into a fresh segment (master side)."""
        fields = []
        offset = 0
        contiguous = {
            key: np.ascontiguousarray(arr) for key, arr in arrays.items()
        }
        for key, arr in contiguous.items():
            offset = _aligned(offset)
            fields.append((key, arr.dtype.str, list(arr.shape), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(
            name=_segment_name(tag), create=True, size=max(offset, 1)
        )
        spec = {"name": shm.name, "fields": fields}
        views = cls._views(shm, fields)
        for key, arr in contiguous.items():
            np.copyto(views[key], arr)
        return cls(shm, views, spec, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "ShmPack":
        """Attach to an existing segment from its spec (worker side).

        Attaching must not (re-)register the segment with the process's
        ``resource_tracker``: under the fork start method the workers
        share the master's tracker, so a worker-side deregistration
        would erase the master's own entry, and under spawn a private
        tracker would unlink the master's live segment when the worker
        exits (CPython gh-82300).  Registration is suppressed for the
        duration of the attach instead.
        """
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _no_shm_register(name, rtype):
            if rtype != "shared_memory":  # pragma: no cover - shm only
                original(name, rtype)

        resource_tracker.register = _no_shm_register
        try:
            shm = shared_memory.SharedMemory(name=spec["name"])
        finally:
            resource_tracker.register = original
        return cls(shm, cls._views(shm, spec["fields"]), spec, owner=False)

    @staticmethod
    def _views(shm, fields) -> Dict[str, np.ndarray]:
        return {
            key: np.ndarray(
                tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            for key, dtype, shape, offset in fields
        }

    def close(self) -> None:
        """Drop the mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        # release the exported views before the buffer can be closed
        self.arrays = {}
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmPack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
