"""Stage evaluators: serial default and process-pool parallel.

Every selection algorithm routes its stage search through a
:class:`StageEvaluator`.  The base class *is* the serial implementation
(it calls straight back into the algorithm's serial scan, unchanged);
:class:`ParallelStageEvaluator` shards the candidate views across a
process pool over shared memory and reduces the per-shard offer streams
with the exact serial tie-break rule, so parallel and serial runs select
bit-identical structures.

Worker-count semantics (:func:`resolve_workers`): ``None`` defers to the
``REPRO_WORKERS`` environment variable (unset → serial); ``1`` is
serial; ``0`` is auto — ``min(cpu_count, 8)`` workers, but *only* for
engines with at least :data:`PARALLEL_MIN_STRUCTURES` candidates (pool
startup and per-stage IPC would otherwise cost more than the scan;
small problems silently stay serial); any explicit ``N >= 2`` forces a
pool of that size regardless of problem size (tests force 2 on tiny
graphs).

Pool lifecycle: the pool and segments are created lazily at the first
dispatched stage (so resume replay and seeding never pay for them) and
torn down by the idempotent :meth:`~ParallelStageEvaluator.close` —
called from the algorithm's ``finally``, from the run context's stop
drain (deadline/RSS/SIGINT paths), and from ``atexit`` as a last resort.

State synchronisation per dispatch: the master copies its best-cost
vector and selection mask into the state segment and routes the
structures made stale by commits since the previous dispatch
(:meth:`BenefitEngine.stale_structures_after`, accumulated via
:meth:`note_commit`) to the shard that owns them; each shard task
refreshes its slice of the shared singles cache before scanning.  The
first dispatch refreshes every shard in full, which also covers any
seeding or replay that happened before the pool existed.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.parallel.shm import ShmPack
from repro.parallel.sinks import ChainSink
from repro.parallel.worker import pool_initializer, run_task

#: Auto mode (``workers=0``) falls back to serial below this many
#: structures: a d=5 cube (~360) stays serial, d>=6 (2000+) goes wide.
PARALLEL_MIN_STRUCTURES = 1024

#: Auto mode never starts more workers than this.
MAX_AUTO_WORKERS = 8

#: Environment default for algorithms constructed with ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"

_FIT_STRICT = "strict"  # mirror of algorithms.base.FIT_STRICT (cycle-free)


def resolve_workers(workers=None) -> Tuple[int, bool]:
    """Resolve a ``workers`` parameter to ``(count, forced)``.

    ``forced`` is True for an explicit ``N >= 2`` (including via the
    environment): the candidate-count auto-fallback then does not apply.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1, False
        workers = env
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return min(os.cpu_count() or 1, MAX_AUTO_WORKERS), False
    return workers, workers > 1


def make_evaluator(engine, workers=None) -> "StageEvaluator":
    """The evaluator for one run: serial unless ``workers`` (or the
    ``REPRO_WORKERS`` environment) asks for — and the problem size
    justifies — a pool.

    Whenever a worker count is *requested* at all — explicitly (any
    value, including ``1`` and auto ``0``) or via ``REPRO_WORKERS`` —
    the engine's eager benefit kernels are routed through the CSR store
    (:meth:`~repro.core.benefit.BenefitEngine.route_through_csr`), even
    when the run ends up serial.  Pool workers always evaluate through
    :func:`~repro.core.benefit.csr_gains`; routing the serial scans
    through the same kernel makes every stage of the run — serial
    stages after pooled ones, the serial arm of an equivalence check, a
    resume at a different worker count — bitwise identical rather than
    merely last-ulp-close.
    """
    requested = workers is not None or bool(
        os.environ.get(WORKERS_ENV, "").strip()
    )
    if requested and hasattr(engine, "route_through_csr"):
        engine.route_through_csr()
    count, forced = resolve_workers(workers)
    if count <= 1:
        return StageEvaluator()
    if not forced and engine.n_structures < PARALLEL_MIN_STRUCTURES:
        return StageEvaluator()
    return ParallelStageEvaluator(engine, count)


class StageEvaluator:
    """Serial stage evaluation — the base class and the default.

    Each ``*_stage`` method returns exactly what the algorithm's serial
    stage search returns; the parallel subclass overrides them with the
    shard/dispatch/reduce pipeline.
    """

    workers = 1
    is_parallel = False

    def single_stage(self, engine, ids, space_left, lazy):
        """Best single structure over ``ids`` (HRU stages, TwoStep's
        index loop, 1-greedy): ``(id, benefit, space, ratio)`` or None."""
        return engine.best_single(ids, space_left=space_left, lazy=lazy)

    def rgreedy_stage(self, algo, engine, space, lazy):
        return algo._best_stage(engine, space, lazy)

    def inner_stage(self, algo, engine, space, lazy):
        return algo._best_stage(engine, space, lazy)

    def maintenance_stage(self, algo, engine, space, update_costs):
        return algo._best_stage(engine, space, update_costs)

    @property
    def wants_commit_hook(self) -> bool:
        """Whether the tracker should report commits via :meth:`note_commit`."""
        return False

    def note_commit(self, engine, old_best) -> None:
        """Hook: ``old_best`` is the best-cost vector before the commit."""

    def close(self) -> None:
        """Release pool/segments; idempotent, no-op for the serial base."""


class ParallelStageEvaluator(StageEvaluator):
    """Sharded stage evaluation over a process pool (see module docstring)."""

    is_parallel = True

    def __init__(self, engine, workers: int):
        self.engine = engine
        self.workers = int(workers)
        self._pool = None
        self._static: Optional[ShmPack] = None
        self._state: Optional[ShmPack] = None
        self._shards: List[Tuple[int, int]] = []
        self._shard_of: Optional[np.ndarray] = None
        self._pending_full = True
        self._pending_stale: List[np.ndarray] = []
        self._closed = False

    # -------------------------------------------------------------- stages

    def single_stage(self, engine, ids, space_left, lazy):
        arr = np.asarray(ids, dtype=np.int64)
        if arr.size == 0:
            return None
        self._ensure_pool()
        results = self._dispatch(
            "single", {"space_left": space_left}, single_ids=self._split(arr)
        )
        sink = ChainSink()
        for offers in results:
            for sid, benefit, space in offers:
                sink.offer((int(sid),), benefit, space)
        if sink.ids is None:
            return None
        return sink.ids[0], sink.benefit, sink.space, sink.ratio

    def rgreedy_stage(self, algo, engine, space, lazy):
        space_left = space - engine.space_used()
        strict = algo.fit == _FIT_STRICT
        best = ChainSink()
        if algo.r < 2:
            pick = self.single_stage(
                engine, engine.stage_candidates(),
                space_left if strict else None, lazy,
            )
            if pick is not None:
                sid, benefit, sid_space, _ratio = pick
                best.offer((sid,), benefit, sid_space)
            return best
        self._ensure_pool()
        results = self._dispatch(
            "rgreedy",
            {"algo": algo.config(), "space_left": space_left, "strict": strict},
        )
        for offers in results:
            for cand_ids, benefit, cand_space in offers:
                best.offer(tuple(cand_ids), benefit, cand_space)
        return best

    def inner_stage(self, algo, engine, space, lazy):
        strict = algo.fit == _FIT_STRICT
        space_left = space - engine.space_used()
        ig_cap = space_left if strict else space
        self._ensure_pool()
        results = self._dispatch(
            "inner",
            {
                "algo": algo.config(),
                "space_left": space_left,
                "strict": strict,
                "ig_cap": ig_cap,
            },
        )
        sink = ChainSink()
        # serial order is all phase-1 offers, then all phase-2 offers
        for phase in ("phase1", "phase2"):
            for shard_result in results:
                for cand_ids, benefit, cand_space in shard_result[phase]:
                    sink.offer(tuple(cand_ids), benefit, cand_space)
        if sink.ids is None:
            return None
        return sink.ids, sink.space

    def maintenance_stage(self, algo, engine, space, update_costs):
        space_left = space - engine.space_used()
        self._ensure_pool()
        results = self._dispatch(
            "maintenance",
            {
                "algo": algo.config(),
                "space_left": space_left,
                "delta_rows": algo.delta_rows,
            },
        )
        sink = ChainSink()
        for offers in results:
            for cand_ids, net, cand_space in offers:
                sink.offer(tuple(cand_ids), net, cand_space)
        if sink.ids is None:
            return None
        return sink.ids, sink.space

    # ----------------------------------------------------------- commit hook

    @property
    def wants_commit_hook(self) -> bool:
        return self._pool is not None

    def note_commit(self, engine, old_best) -> None:
        if self._pool is None:
            return  # the first dispatch refreshes every shard in full
        stale = engine.stale_structures_after(old_best)
        if stale.size:
            self._pending_stale.append(stale)

    # ------------------------------------------------------------- lifecycle

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        if self._closed:
            raise RuntimeError("evaluator already closed")
        engine = self.engine
        arrays = engine.shared_arrays()
        candidates = arrays["stage_candidates"]
        self._shards = _partition(
            candidates, engine.is_view, arrays["row_ptr"], self.workers
        )
        shard_of = np.zeros(engine.n_structures, dtype=np.int32)
        for k, (lo, hi) in enumerate(self._shards):
            shard_of[candidates[lo:hi]] = k
        self._shard_of = shard_of
        self._static = ShmPack.create(arrays, tag="static")
        self._state = ShmPack.create(
            {
                "best": np.zeros(engine.n_queries, dtype=np.float64),
                "selected": np.zeros(engine.n_structures, dtype=bool),
                "singles": np.zeros(engine.n_structures, dtype=np.float64),
            },
            tag="state",
        )
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=pool_initializer,
            initargs=(
                self._static.spec,
                self._state.spec,
                {"shards": [list(pair) for pair in self._shards]},
            ),
        )
        # from here the shared singles cache is authoritative; drop the
        # master's so commits stop paying for a cache nobody reads
        engine.invalidate()
        self._pending_full = True
        self._pending_stale = []
        atexit.register(self.close)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            atexit.unregister(self.close)
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for pack in (self._static, self._state):
            if pack is not None:
                pack.close()
        self._static = self._state = None

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, kind: str, common: dict, single_ids=None) -> list:
        engine = self.engine
        np.copyto(self._state.arrays["best"], engine._best)
        np.copyto(self._state.arrays["selected"], engine.selected_mask)
        refreshes = self._refresh_specs()
        futures = []
        for shard in range(len(self._shards)):
            task = dict(common)
            task["kind"] = kind
            task["shard"] = shard
            task["refresh"] = refreshes[shard]
            if single_ids is not None:
                task["ids"] = single_ids[shard]
            futures.append(self._pool.submit(run_task, task))
        # gather in shard order: the reduction replays offers in the
        # canonical candidate order, shard by shard
        return [future.result() for future in futures]

    def _refresh_specs(self) -> list:
        n = len(self._shards)
        if self._pending_full:
            specs = ["full"] * n
        elif self._pending_stale:
            stale = np.unique(np.concatenate(self._pending_stale))
            owner = self._shard_of[stale]
            specs = [np.ascontiguousarray(stale[owner == k]) for k in range(n)]
        else:
            specs = [None] * n
        self._pending_full = False
        self._pending_stale = []
        return specs

    def _split(self, arr: np.ndarray) -> list:
        """Split a canonical-order candidate subset into per-shard slices
        (shard ownership is non-decreasing along the canonical order)."""
        bounds = np.searchsorted(
            self._shard_of[arr], np.arange(1, len(self._shards))
        )
        return np.split(arr, bounds)


def _partition(candidates, is_view, row_ptr, workers: int) -> List[Tuple[int, int]]:
    """Shard the canonical candidate order into ``workers`` contiguous
    slices, aligned at view-subtree boundaries (a view and its indexes
    never straddle shards — the subset searches need the whole subtree),
    balanced by CSR edge counts (edges dominate both the singles refresh
    and the scan kernels).  Deterministic; trailing shards may be empty
    when there are fewer views than workers."""
    size = int(candidates.size)
    if size == 0:
        return [(0, 0)] * workers
    weights = (row_ptr[candidates + 1] - row_ptr[candidates]).astype(
        np.float64
    ) + 1.0
    cumulative = np.cumsum(weights)
    total = float(cumulative[-1])
    seg_starts = np.flatnonzero(is_view[candidates])
    seg_before = np.where(seg_starts > 0, cumulative[seg_starts - 1], 0.0)
    bounds = [0]
    for k in range(1, workers):
        j = int(np.searchsorted(seg_before, total * k / workers, side="left"))
        position = int(seg_starts[j]) if j < seg_starts.size else size
        bounds.append(max(position, bounds[-1]))
    bounds.append(size)
    return [(bounds[i], bounds[i + 1]) for i in range(workers)]
