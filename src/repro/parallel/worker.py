"""The pool worker: shared-memory engine view + per-shard stage scans.

Each worker process attaches to two segments at pool start (the
initializer): the *static* pack — the engine's compiled CSR cost store,
``spaces``, ``frequencies``, structure attributes, and the canonical
candidate order — and the *state* pack — the per-query best costs, the
selection mask, and the maintained single-benefit cache, refreshed by
the master before/by the workers during each dispatch.

:class:`WorkerStore` duck-types the slice of the
:class:`~repro.core.benefit.BenefitEngine` interface the serial scan
code reads (``spaces``/``frequencies``/``best_costs``/``selected_mask``/
``minimum_with``/``gains_for``/``index_ids_of``/``single_benefits``/
``space_of``), so workers run the *identical* scan implementations the
serial algorithms use — ``RGreedy._scan_views`` (pruned subset search),
``InnerLevelGreedy._scan_phase1/_scan_phase2`` (inner-greedy growth),
``MaintenanceAwareGreedy._scan_views`` — only with a
:class:`~repro.parallel.sinks.RecorderSink` in place of the serial
incumbent chain.  Sharing the code (and the
:func:`~repro.core.benefit.csr_gains` kernels) is what makes the
parallel selections bit-identical, not merely close.

Workers are stateless between tasks: any worker can run any shard's
task, because the mutable state (including the singles cache, which a
task refreshes for its shard's stale structures *before* scanning)
lives in shared memory, not in the worker.
"""

from __future__ import annotations

import signal
from typing import Optional

import numpy as np

from repro.core.benefit import csr_gains, csr_minimum_with
from repro.parallel.shm import ShmPack
from repro.parallel.sinks import RecorderSink

#: Mirror of repro.algorithms.base.SPACE_EPS (imported by value to keep
#: this module import-light in spawned children and cycle-free).
_SPACE_EPS = 1e-9

_EMPTY = np.empty(0, dtype=np.int64)

#: Process-global store, set once per worker by the pool initializer.
_STORE: Optional["WorkerStore"] = None

#: Rebuilt algorithm instances / update-cost vectors, cached per worker.
_ALGO_CACHE: dict = {}
_UPDATE_COSTS_CACHE: dict = {}


def pool_initializer(static_spec: dict, state_spec: dict, meta: dict) -> None:
    """Attach the worker to the shared segments; ignore SIGINT.

    Ctrl+C goes to the whole process group; the master handles it
    cooperatively (finish the stage, checkpoint, drain the pool), so
    workers must not die mid-task from the same signal.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    global _STORE
    _STORE = WorkerStore(static_spec, state_spec, meta)


class WorkerStore:
    """Read-mostly engine view over the shared segments.

    ``backend`` is always ``"sparse"`` — the CSR store is built
    unconditionally even for dense-backend engines, and the sparse scan
    kernels are the ones whose summation order matches the maintained
    singles cache bitwise.
    """

    backend = "sparse"
    uses_csr_kernels = True

    def __init__(self, static_spec: dict, state_spec: dict, meta: dict):
        self._static = ShmPack.attach(static_spec)
        self._state = ShmPack.attach(state_spec)
        arrays = self._static.arrays
        self._row_ptr = arrays["row_ptr"]
        self._row_cols = arrays["row_cols"]
        self._row_vals = arrays["row_vals"]
        self.spaces = arrays["spaces"]
        self.frequencies = arrays["frequencies"]
        self.is_view = arrays["is_view"]
        self.view_id_of = arrays["view_id_of"]
        self._candidates = arrays["stage_candidates"]
        state = self._state.arrays
        self._best = state["best"]
        self._selected_mask = state["selected"]
        self._singles = state["singles"]
        self._shards = [tuple(int(p) for p in pair) for pair in meta["shards"]]
        # per-view index id arrays, from the canonical view-then-indexes
        # order (same content as BenefitEngine._indexes_of)
        cand = self._candidates
        view_starts = np.flatnonzero(self.is_view[cand])
        bounds = np.append(view_starts, cand.size)
        self._indexes_of = {
            int(cand[bounds[i]]): cand[bounds[i] + 1 : bounds[i + 1]]
            for i in range(view_starts.size)
        }

    # ------------------------------------------- engine duck-type surface

    @property
    def n_structures(self) -> int:
        return int(self.spaces.size)

    @property
    def best_costs(self) -> np.ndarray:
        return self._best.copy()

    @property
    def selected_mask(self) -> np.ndarray:
        return self._selected_mask

    def index_ids_of(self, view_id: int) -> np.ndarray:
        return self._indexes_of.get(int(view_id), _EMPTY)

    def minimum_with(self, vec: np.ndarray, structure_id: int) -> np.ndarray:
        return csr_minimum_with(
            vec, self._row_ptr, self._row_cols, self._row_vals, structure_id
        )

    def gains_for(self, ids, base: np.ndarray) -> np.ndarray:
        return csr_gains(
            self._row_ptr, self._row_cols, self._row_vals, self.frequencies, base, ids
        )

    def single_benefits(self, ids=None, lazy=None) -> np.ndarray:
        if ids is None:
            return self._singles.copy()
        return self._singles[np.asarray(ids, dtype=np.int64)]

    def space_of(self, ids) -> float:
        arr = np.fromiter(ids, dtype=np.int64)
        return float(self.spaces[arr].sum()) if arr.size else 0.0

    # ------------------------------------------------------ shard helpers

    def shard_candidates(self, shard: int) -> np.ndarray:
        lo, hi = self._shards[shard]
        return self._candidates[lo:hi]

    def shard_views(self, shard: int) -> np.ndarray:
        seg = self.shard_candidates(shard)
        return seg[self.is_view[seg]]

    def refresh_singles(self, ids: np.ndarray) -> None:
        """Re-score the given structures' cached single benefits against
        the current shared best costs — bitwise the same values the
        serial maintained cache would hold (same kernel, same state)."""
        arr = np.asarray(ids, dtype=np.int64)
        if arr.size:
            self._singles[arr] = csr_gains(
                self._row_ptr,
                self._row_cols,
                self._row_vals,
                self.frequencies,
                self._best,
                arr,
            )


# ------------------------------------------------------------------ tasks


def run_task(task: dict):
    """Refresh this task's shard of the singles cache, then run its scan.

    Returns the shard's recorded offers: a list of
    ``(ids, benefit, space)`` for ``single``/``rgreedy``/``maintenance``
    kinds, a ``{"phase1": [...], "phase2": [...]}`` pair for ``inner``
    (the two phases are separate chains in the serial order and must be
    reduced phase-by-phase), or ``None`` for a pure ``refresh``.
    """
    store = _STORE
    shard = task["shard"]
    refresh = task.get("refresh")
    if isinstance(refresh, str) and refresh == "full":
        store.refresh_singles(store.shard_candidates(shard))
    elif refresh is not None:
        store.refresh_singles(np.asarray(refresh, dtype=np.int64))

    kind = task["kind"]
    if kind == "refresh":
        return None
    if kind == "single":
        return _scan_single(
            store, np.asarray(task["ids"], dtype=np.int64), task["space_left"]
        )
    algo = _algorithm_for(task["algo"])
    views = store.shard_views(shard)
    space_left = task["space_left"]
    if kind == "rgreedy":
        recorder = RecorderSink()
        algo._scan_views(
            store, views, recorder, store._singles, space_left,
            task["strict"], lazy=True,
        )
        return recorder.offers
    if kind == "inner":
        phase1, phase2 = RecorderSink(), RecorderSink()
        algo._scan_phase1(
            store, views, phase1, store._singles, space_left,
            task["ig_cap"], task["strict"],
        )
        algo._scan_phase2(store, views, phase2, space_left, task["strict"], lazy=True)
        return {"phase1": phase1.offers, "phase2": phase2.offers}
    if kind == "maintenance":
        recorder = RecorderSink()
        algo._scan_views(
            store, views, recorder, space_left,
            _update_costs_for(store, task["delta_rows"]), store._singles,
        )
        return recorder.offers
    raise ValueError(f"unknown task kind {kind!r}")


def _scan_single(store: WorkerStore, arr: np.ndarray, space_left):
    """Strict prefix maxima of the single-structure offer stream over
    ``arr`` — the same eligibility filters, in the same order, as
    :meth:`BenefitEngine.best_single`."""
    if arr.size == 0:
        return []
    benefits = store._singles[arr]
    spaces = store.spaces[arr]
    selected = store._selected_mask
    eligible = (benefits > 0.0) & ~selected[arr]
    eligible &= store.is_view[arr] | selected[store.view_id_of[arr]]
    if space_left is not None:
        eligible &= spaces <= space_left + _SPACE_EPS
    if not eligible.any():
        return []
    pos = np.flatnonzero(eligible)
    ratios = benefits[pos] / spaces[pos]
    prev = np.empty_like(ratios)
    prev[0] = 0.0
    np.maximum.accumulate(ratios[:-1], out=prev[1:])
    keep = pos[ratios > prev]
    return [
        (int(arr[p]), float(benefits[p]), float(spaces[p]))
        for p in keep.tolist()
    ]


def _algorithm_for(config: dict):
    """Rebuild (and cache) the algorithm whose scan methods a task reuses."""
    key = repr(sorted(config.get("params", {}).items())) + config["class"]
    algo = _ALGO_CACHE.get(key)
    if algo is None:
        from repro.runtime.checkpoint import algorithm_from_config

        algo = algorithm_from_config(config)
        _ALGO_CACHE[key] = algo
    return algo


def _update_costs_for(store: WorkerStore, delta_rows: float) -> np.ndarray:
    costs = _UPDATE_COSTS_CACHE.get(delta_rows)
    if costs is None:
        from repro.algorithms.maintenance_aware import structure_update_costs

        costs = structure_update_costs(store, delta_rows)
        _UPDATE_COSTS_CACHE[delta_rows] = costs
    return costs
