"""repro — a reproduction of "Index Selection for OLAP" (ICDE 1997).

Gupta, Harinarayan, Rajaraman, and Ullman showed that OLAP summary tables
(subcubes of the data cube) and the B-tree indexes on them should be
selected *together* under a single space budget, and gave a family of
provably near-optimal greedy algorithms for doing so.  This package
implements the full system: the cube/lattice/query/index model, the linear
cost model, the query-view-graph formalization, the r-greedy and
inner-level greedy algorithms with the two-step and [HRU96] baselines and
an exact optimal solver, size-estimation machinery, a synthetic cube
generator, and a mini-ROLAP execution engine that validates the cost model
by actually running queries.

Quickstart::

    from repro import RGreedy, tpcd_graph, TPCD_SPACE_BUDGET

    result = RGreedy(r=1).run(tpcd_graph(), TPCD_SPACE_BUDGET)
    print(result.table())
"""

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    BranchAndBoundOptimal,
    HRUGreedy,
    InnerLevelGreedy,
    RGreedy,
    TwoStep,
    exhaustive_optimal,
    inner_level_guarantee,
    r_greedy_guarantee,
)
from repro.algorithms import LocalSearchRefiner
from repro.core import (
    BenefitEngine,
    CubeLattice,
    HierarchicalCube,
    Hierarchy,
    Index,
    Level,
    LinearCostModel,
    QueryViewGraph,
    SelectionResult,
    SliceQuery,
    View,
    hierarchical_lattice_graph,
)
from repro.cube import CubeSchema, Dimension, generate_fact_table, uniform_workload
from repro.datasets import (
    FIGURE2_SPACE,
    TPCD_SPACE_BUDGET,
    figure2_graph,
    tpcd_graph,
    tpcd_lattice,
    tpcd_schema,
)
from repro.analysis import compare, explain
from repro.estimation import analytical_lattice, correlated_lattice, expected_distinct
from repro.sql import parse_query, run_sql

__version__ = "1.0.0"

__all__ = [
    "BenefitEngine",
    "BranchAndBoundOptimal",
    "CubeLattice",
    "CubeSchema",
    "Dimension",
    "FIGURE2_SPACE",
    "FIT_PAPER",
    "FIT_STRICT",
    "HRUGreedy",
    "HierarchicalCube",
    "Hierarchy",
    "Index",
    "InnerLevelGreedy",
    "Level",
    "LinearCostModel",
    "LocalSearchRefiner",
    "QueryViewGraph",
    "RGreedy",
    "SelectionResult",
    "SliceQuery",
    "TPCD_SPACE_BUDGET",
    "TwoStep",
    "View",
    "analytical_lattice",
    "compare",
    "correlated_lattice",
    "expected_distinct",
    "explain",
    "exhaustive_optimal",
    "figure2_graph",
    "generate_fact_table",
    "hierarchical_lattice_graph",
    "inner_level_guarantee",
    "parse_query",
    "run_sql",
    "r_greedy_guarantee",
    "tpcd_graph",
    "tpcd_lattice",
    "tpcd_schema",
    "uniform_workload",
    "__version__",
]
