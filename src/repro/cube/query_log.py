"""Query logs: deriving the workload frequencies from observed queries.

The selection problem takes per-query frequencies ``f_i`` as input
(Section 5.1); in practice these come from the warehouse's query log.
This module generates synthetic logs (concrete slice queries with bound
selection values) and estimates the generic-query frequency distribution
back from a log — closing the loop between the engine's executable
queries and the advisor's abstract workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.cube.schema import CubeSchema
from repro.cube.workload import zipf_frequencies

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass(frozen=True)
class LogEntry:
    """One executed query: the generic pattern plus bound values."""

    query: SliceQuery
    values: Tuple[Tuple[str, int], ...]  # sorted (attr, value) pairs

    @property
    def bound_values(self) -> Dict[str, int]:
        return dict(self.values)


def generate_query_log(
    schema: CubeSchema,
    n_entries: int,
    rng: RngLike = None,
    pattern_frequencies: Optional[Mapping[SliceQuery, float]] = None,
    zipf_exponent: float = 1.0,
) -> List[LogEntry]:
    """Generate a synthetic log of concrete slice queries.

    Patterns are drawn from ``pattern_frequencies`` (default: Zipf over
    all ``3^n`` slice queries with the given exponent); selection values
    are drawn uniformly from each attribute's domain.
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    rng = _as_rng(rng)
    patterns = list(enumerate_slice_queries(schema.names))
    if pattern_frequencies is None:
        pattern_frequencies = zipf_frequencies(patterns, zipf_exponent, rng=rng)
    weights = np.array([pattern_frequencies.get(q, 0.0) for q in patterns])
    if weights.sum() <= 0:
        raise ValueError("pattern frequencies must have a positive sum")
    weights = weights / weights.sum()

    picks = rng.choice(len(patterns), size=n_entries, p=weights)
    entries = []
    for pick in picks:
        query = patterns[int(pick)]
        values = tuple(
            sorted(
                (attr, int(rng.integers(0, schema.cardinality(attr))))
                for attr in query.selection
            )
        )
        entries.append(LogEntry(query=query, values=values))
    return entries


def pattern_counts(log: Iterable[LogEntry]) -> Dict[SliceQuery, int]:
    """Raw occurrence count of each generic pattern in the log.

    The un-normalized companion of :func:`estimate_frequencies` — an
    empty log is an empty mapping, not an error, so streaming consumers
    (the serving drift monitor) can poll it before any query arrives.
    Accepts any iterable and makes exactly one pass, so a streaming
    :func:`repro.io.iter_query_log` generator feeds it without the log
    ever being resident in memory.
    """
    counts: Dict[SliceQuery, int] = {}
    for entry in log:
        counts[entry.query] = counts.get(entry.query, 0) + 1
    return counts


def estimate_frequencies(
    log: Iterable[LogEntry],
    smoothing: float = 0.0,
    universe: Optional[Sequence[SliceQuery]] = None,
) -> Dict[SliceQuery, float]:
    """Relative frequency of each generic pattern in the log.

    ``smoothing`` adds a Laplace pseudo-count to every pattern of the
    ``universe`` (required when smoothing > 0), so unseen-but-possible
    queries keep a nonzero weight.  Frequencies sum to 1.  Single-pass:
    a streaming iterator works.
    """
    counts: Dict[SliceQuery, float] = {}
    for entry in log:
        counts[entry.query] = counts.get(entry.query, 0.0) + 1.0
    if not counts:
        raise ValueError("log must be non-empty")
    if smoothing > 0:
        if universe is None:
            raise ValueError("smoothing requires an explicit query universe")
        for query in universe:
            counts[query] = counts.get(query, 0.0) + smoothing
    total = sum(counts.values())
    return {query: count / total for query, count in counts.items()}


def hot_selection_values(
    log: Iterable[LogEntry], attr: str, top_k: int = 5
) -> List[Tuple[int, int]]:
    """Most frequently selected values of an attribute, ``(value, count)``.

    Useful for diagnosing skewed access patterns (hot slices) that make
    per-prefix index benefit deviate from the uniform-average cost
    formula.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    counts: Dict[int, int] = {}
    for entry in log:
        bound = entry.bound_values
        if attr in bound:
            counts[bound[attr]] = counts.get(bound[attr], 0) + 1
    ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:top_k]
