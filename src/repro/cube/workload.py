"""Query workloads: populations of slice queries with frequencies.

The paper's problem definition assumes a set of queries ``Q`` with
(optionally) a frequency ``f_i`` per query; Section 6 varies the query
frequencies as one of its experimental knobs.  This module builds the
standard populations:

* :func:`uniform_workload` — all ``3^n`` slice queries, equiprobable
  (the Example 2.1 setting);
* :func:`zipf_frequencies` — Zipf-distributed frequencies over a query
  population, with an optional shuffle so the skew is not correlated with
  the enumeration order;
* :func:`sampled_workload` — a uniform subset of the slice queries, for
  workloads that only touch part of the cube.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.query import SliceQuery, enumerate_slice_queries

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def uniform_workload(dimensions: Sequence[str]) -> List[SliceQuery]:
    """All ``3^n`` slice queries (equiprobable when no frequencies given)."""
    return list(enumerate_slice_queries(dimensions))


def zipf_frequencies(
    queries: Sequence[SliceQuery],
    exponent: float = 1.0,
    rng: RngLike = None,
    shuffle: bool = True,
    total: float = 1.0,
) -> Dict[SliceQuery, float]:
    """Zipf-distributed frequencies summing to ``total``.

    With ``shuffle=True`` (default) the rank order is a random permutation
    of the queries, so hot queries land anywhere in the lattice; with
    ``shuffle=False`` ranks follow the given order (deterministic without
    an rng).
    """
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    if not queries:
        raise ValueError("queries must be non-empty")
    n = len(queries)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights *= total / weights.sum()
    order = list(range(n))
    if shuffle:
        _as_rng(rng).shuffle(order)
    return {queries[pos]: float(weights[rank]) for rank, pos in enumerate(order)}


def sampled_workload(
    dimensions: Sequence[str],
    n_queries: int,
    rng: RngLike = None,
) -> List[SliceQuery]:
    """A uniform random subset of the slice queries (without replacement)."""
    population = uniform_workload(dimensions)
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if n_queries >= len(population):
        return population
    rng = _as_rng(rng)
    picks = rng.choice(len(population), size=n_queries, replace=False)
    return [population[i] for i in sorted(picks)]


def normalize_frequencies(
    frequencies: Dict[SliceQuery, float], total: float = 1.0
) -> Dict[SliceQuery, float]:
    """Rescale frequencies to sum to ``total``."""
    current = sum(frequencies.values())
    if current <= 0:
        raise ValueError("frequencies must have a positive sum")
    scale = total / current
    return {q: f * scale for q, f in frequencies.items()}


def total_variation(
    observed: Dict[SliceQuery, float], advised: Dict[SliceQuery, float]
) -> float:
    """Total-variation distance between two frequency distributions.

    Both mappings are normalized to sum to 1 first (missing queries
    count as 0), so the result is in ``[0, 1]``: 0 when the observed
    workload matches the advised one exactly, 1 when they are disjoint.
    This is the drift metric the serving layer watches — the largest
    probability mass the advisor assigned to the wrong queries.
    """
    observed = normalize_frequencies(observed)
    advised = normalize_frequencies(advised)
    keys = set(observed) | set(advised)
    return 0.5 * sum(
        abs(observed.get(q, 0.0) - advised.get(q, 0.0)) for q in keys
    )
