"""Data-cube schemas: dimensions, cardinalities, and the measure attribute.

A :class:`CubeSchema` describes the raw fact table of a data cube: an
ordered list of :class:`Dimension` objects (each with a domain cardinality)
plus the name of the measure being aggregated (``sales`` in the paper's
TPC-D example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.view import View


@dataclass(frozen=True)
class Dimension:
    """One dimension of the cube.

    Attributes
    ----------
    name:
        Attribute name, e.g. ``"part"`` or its abbreviation ``"p"``.
    cardinality:
        Number of distinct values in the dimension's domain.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if self.cardinality < 1:
            raise ValueError(
                f"dimension {self.name!r} must have cardinality >= 1, "
                f"got {self.cardinality}"
            )

    def __str__(self) -> str:
        return f"{self.name}({self.cardinality})"


class CubeSchema:
    """An ordered collection of dimensions plus a measure name.

    >>> schema = CubeSchema([Dimension("p", 200_000), Dimension("s", 10_000)])
    >>> schema.names
    ('p', 's')
    >>> schema.cardinality("p")
    200000
    >>> schema.dense_cells
    2000000000
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        measure: str = "sales",
    ):
        if not dimensions:
            raise ValueError("a cube needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        if measure in names:
            raise ValueError(f"measure {measure!r} collides with a dimension name")
        self._dimensions = tuple(dimensions)
        self._by_name = {d.name: d for d in dimensions}
        self.measure = measure

    @classmethod
    def from_cardinalities(
        cls, cardinalities: Mapping[str, int], measure: str = "sales"
    ) -> "CubeSchema":
        """Build a schema from a ``{name: cardinality}`` mapping.

        Iteration order of the mapping fixes the dimension order.
        """
        dims = [Dimension(name, card) for name, card in cardinalities.items()]
        return cls(dims, measure=measure)

    @property
    def dimensions(self) -> tuple:
        return self._dimensions

    @property
    def names(self) -> tuple:
        """Dimension names in schema order."""
        return tuple(d.name for d in self._dimensions)

    @property
    def n_dims(self) -> int:
        return len(self._dimensions)

    def __len__(self) -> int:
        return len(self._dimensions)

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self._dimensions)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def dimension(self, name: str) -> Dimension:
        """Look up a dimension by name; raises ``KeyError`` if unknown."""
        return self._by_name[name]

    def cardinality(self, name: str) -> int:
        return self._by_name[name].cardinality

    @property
    def dense_cells(self) -> int:
        """Product of all dimension cardinalities (the dense cube size)."""
        return math.prod(d.cardinality for d in self._dimensions)

    def cells_of(self, view: View | Iterable[str]) -> int:
        """Product of cardinalities of the given attribute set.

        This is the number of cells in the (dense) subcube for that view,
        which upper-bounds the number of rows in the materialized view.
        """
        attrs = view.attrs if isinstance(view, View) else frozenset(view)
        unknown = attrs - set(self.names)
        if unknown:
            raise KeyError(f"unknown dimensions: {sorted(unknown)}")
        return math.prod(self._by_name[a].cardinality for a in attrs)

    def top_view(self) -> View:
        """The view grouping by every dimension (the raw-data subcube)."""
        return View(self.names)

    def view(self, *names: str) -> View:
        """Build a view over the given dimensions, validating names."""
        unknown = set(names) - set(self.names)
        if unknown:
            raise KeyError(f"unknown dimensions: {sorted(unknown)}")
        return View(names)

    def sort_attrs(self, attrs: Iterable[str]) -> tuple:
        """Return ``attrs`` ordered by schema dimension order."""
        order = {name: i for i, name in enumerate(self.names)}
        return tuple(sorted(attrs, key=lambda a: order[a]))

    def __repr__(self) -> str:
        dims = ", ".join(str(d) for d in self._dimensions)
        return f"CubeSchema([{dims}], measure={self.measure!r})"
