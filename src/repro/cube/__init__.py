"""Cube schemas, synthetic data generation, and query workloads."""

from repro.cube.generator import (
    draw_dimension,
    generate_fact_table,
    sparsity_of,
    zipf_probabilities,
)
from repro.cube.schema import CubeSchema, Dimension
from repro.cube.workload import (
    normalize_frequencies,
    sampled_workload,
    uniform_workload,
    zipf_frequencies,
)

__all__ = [
    "CubeSchema",
    "Dimension",
    "draw_dimension",
    "generate_fact_table",
    "normalize_frequencies",
    "sampled_workload",
    "sparsity_of",
    "uniform_workload",
    "zipf_frequencies",
    "zipf_probabilities",
]
