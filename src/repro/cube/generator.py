"""Synthetic fact-table generation for the Section 6 experiments.

The paper generates cubes "using the analytical model in [HRU96]" while
varying the cardinality of each dimension, the sparsity of the cube, and
the query frequencies.  This module produces *actual* fact tables with the
same knobs so that both the analytical size model and the execution engine
can be exercised:

* per-dimension **cardinality** — from the schema;
* **sparsity** — the ratio of raw rows to the dense cell count;
* **skew** — per-dimension Zipf exponents (0 = uniform);
* **correlation** — a dimension may be functionally fanned out from
  another (e.g. TPC-D's "each part is supplied by ~4 suppliers"), which is
  what makes real view sizes deviate from the independence model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cube.schema import CubeSchema

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.engine.table import FactTable

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zipf_probabilities(cardinality: int, exponent: float) -> np.ndarray:
    """Rank-frequency probabilities ``p_i ∝ 1/i^exponent`` (0 = uniform)."""
    if cardinality < 1:
        raise ValueError("cardinality must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def draw_dimension(
    cardinality: int,
    n_rows: int,
    rng: np.random.Generator,
    exponent: float = 0.0,
) -> np.ndarray:
    """Draw ``n_rows`` values of a dimension with optional Zipf skew."""
    if exponent == 0.0:
        return rng.integers(0, cardinality, size=n_rows, dtype=np.int64)
    probs = zipf_probabilities(cardinality, exponent)
    return rng.choice(cardinality, size=n_rows, p=probs).astype(np.int64)


def generate_fact_table(
    schema: CubeSchema,
    n_rows: int,
    rng: RngLike = None,
    skew: Optional[Mapping[str, float]] = None,
    correlated: Optional[Mapping[str, Tuple[str, int]]] = None,
    extra_measures: Sequence[str] = (),
) -> "FactTable":
    """Generate a synthetic fact table.

    Parameters
    ----------
    schema:
        Dimension names and cardinalities.
    n_rows:
        Number of fact rows (choose ``sparsity * schema.dense_cells``).
    rng:
        Seed, generator, or ``None`` for nondeterministic.
    skew:
        Optional per-dimension Zipf exponents; missing dimensions are
        uniform.
    correlated:
        Optional ``{child: (parent, fanout)}`` functional-style
        correlations: each child value is one of ``fanout`` values
        deterministically derived from the row's parent value.  The parent
        must not itself be correlated.
    extra_measures:
        Optional names of additional measure columns to generate (uniform
        ``[0, 100)`` like the primary measure).

    >>> schema = CubeSchema.from_cardinalities({"a": 100, "b": 50})
    >>> fact = generate_fact_table(schema, 1000, rng=0)
    >>> fact.n_rows
    1000
    """
    from repro.engine.table import FactTable

    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
    rng = _as_rng(rng)
    skew = dict(skew or {})
    correlated = dict(correlated or {})

    for child, (parent, fanout) in correlated.items():
        if child not in schema or parent not in schema:
            raise KeyError(f"correlation {child!r}->{parent!r}: unknown dimension")
        if parent in correlated:
            raise ValueError(f"correlation parent {parent!r} is itself correlated")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")

    columns = {}
    for dim in schema:
        if dim.name in correlated:
            continue
        columns[dim.name] = draw_dimension(
            dim.cardinality, n_rows, rng, skew.get(dim.name, 0.0)
        )
    for child, (parent, fanout) in correlated.items():
        card = schema.cardinality(child)
        parent_values = columns[parent]
        choice = rng.integers(0, fanout, size=n_rows, dtype=np.int64)
        # deterministic "hash" of (parent value, choice) into the child's
        # domain — a fixed affine map keeps the fanout exact per parent.
        columns[child] = (parent_values * np.int64(2654435761) + choice) % card

    measures = rng.uniform(0.0, 100.0, size=n_rows)
    extras = {
        name: rng.uniform(0.0, 100.0, size=n_rows) for name in extra_measures
    }
    return FactTable(schema, columns, measures, extra_measures=extras)


def dense_fact_table(
    schema: CubeSchema, rng: RngLike = 0, integral_measures: bool = False
) -> "FactTable":
    """A *dense* fact table: every dimension combination exactly once.

    On a dense cube every view's row count is the product of its
    attribute cardinalities, so the linear cost model's ``|C| / |E|``
    equals the number of rows behind every bound index prefix *exactly*
    — the fixture that makes predicted-vs-actual serving telemetry an
    equality, not an approximation.  Measures are seeded-random.

    ``integral_measures`` draws whole-number measures instead of uniform
    floats.  Integer-valued float64 sums are exact at these magnitudes,
    so every aggregation order produces bit-identical group values —
    required by the divergent-serving fixtures, where replicas answer
    the same query from *different* structures and the contract is
    byte-identical answers, not answers within a ulp.
    """
    from repro.engine.table import FactTable

    cards = [d.cardinality for d in schema.dimensions]
    grids = np.meshgrid(*[np.arange(c, dtype=np.int64) for c in cards], indexing="ij")
    columns = {
        d.name: grid.reshape(-1) for d, grid in zip(schema.dimensions, grids)
    }
    n_rows = int(np.prod(cards))
    rand = _as_rng(rng)
    if integral_measures:
        measures = rand.integers(1, 100, size=n_rows).astype(np.float64)
    else:
        measures = rand.uniform(1.0, 100.0, size=n_rows)
    return FactTable(schema, columns, measures)


def sparsity_of(schema: CubeSchema, n_rows: int) -> float:
    """The paper's sparsity: raw rows over the dense cell count."""
    return n_rows / schema.dense_cells
