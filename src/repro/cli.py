"""Command-line advisor: what should this cube precompute?

Usage::

    python -m repro advise --lattice cube.json --space 25e6 \\
        --algorithm inner --output selection.json
    python -m repro tpcd                     # the paper's Example 2.1 demo
    python -m repro experiments [names...]   # regenerate paper tables

``cube.json`` is the lattice document of :mod:`repro.io`: dimensions and
either exact per-view row counts or a raw row count for analytical
sizing.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    HRUGreedy,
    InnerLevelGreedy,
    RGreedy,
    TwoStep,
)
from repro.core.qvgraph import QueryViewGraph
from repro.io import (
    graph_from_dict,
    hierarchical_cube_from_dict,
    is_graph_document,
    is_hierarchical_document,
    lattice_from_dict,
    save_selection,
)

ALGORITHMS = {
    "1greedy": lambda fit: RGreedy(1, fit=fit),
    "2greedy": lambda fit: RGreedy(2, fit=fit),
    "3greedy": lambda fit: RGreedy(3, fit=fit),
    "inner": lambda fit: InnerLevelGreedy(fit=fit),
    "two-step": lambda fit: TwoStep(0.5, fit=fit),
    "hru": lambda fit: HRUGreedy(fit=fit),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index Selection for OLAP (ICDE 1997) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    advise = sub.add_parser(
        "advise", help="select views and indexes for a cube under a space budget"
    )
    advise.add_argument(
        "--lattice", required=True, help="lattice JSON document (see repro.io)"
    )
    advise.add_argument(
        "--space", required=True, type=float, help="space budget in rows"
    )
    advise.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="inner",
        help="selection algorithm (default: inner-level greedy)",
    )
    advise.add_argument(
        "--fit",
        choices=(FIT_STRICT, FIT_PAPER),
        default=FIT_STRICT,
        help="space-fit policy (default: strict — never exceed the budget)",
    )
    advise.add_argument(
        "--no-seed-top",
        action="store_true",
        help="do not force-materialize the top view (default: seed it, "
        "since the base data cannot be computed from anything else)",
    )
    advise.add_argument(
        "--index-universe",
        choices=("fat", "all", "none"),
        default="fat",
        help="candidate indexes per view (default: fat only, per §4.2.2)",
    )
    advise.add_argument("--output", help="write the selection as JSON here")

    explain = sub.add_parser(
        "explain", help="explain a saved selection: per-query plans and value"
    )
    explain.add_argument("--lattice", required=True, help="lattice JSON document")
    explain.add_argument(
        "--selection", required=True, help="selection JSON (from advise --output)"
    )
    explain.add_argument(
        "--index-universe", choices=("fat", "all", "none"), default="fat"
    )

    tpcd = sub.add_parser("tpcd", help="run the paper's Example 2.1 demo")
    tpcd.add_argument(
        "--space", type=float, default=None, help="override the 25M-row budget"
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("names", nargs="*", help="subset of experiments")
    return parser


def _load_graph(path: str, index_universe: str):
    """Load a cube document (flat or hierarchical) and compile its graph.

    Returns ``(graph, top_name, top_rows)``.
    """
    import json

    with open(path) as f:
        document = json.load(f)
    if is_graph_document(document):
        graph = graph_from_dict(document)
        # a raw graph has no distinguished top view; no automatic seed
        return graph, None, 0.0
    if is_hierarchical_document(document):
        from repro.core.hierarchy import hierarchical_lattice_graph

        cube = hierarchical_cube_from_dict(document)
        cap = document.get("max_fat_indexes_per_view")
        graph = hierarchical_lattice_graph(cube, max_fat_indexes_per_view=cap)
        return graph, cube.label(cube.top()), cube.size(cube.top())
    lattice = lattice_from_dict(document)
    graph = QueryViewGraph.from_cube(lattice, index_universe=index_universe)
    return graph, lattice.label(lattice.top), lattice.size(lattice.top)


def cmd_advise(args: argparse.Namespace) -> int:
    """Run a selection algorithm on the cube document and report it."""
    graph, top_name, top_rows = _load_graph(args.lattice, args.index_universe)
    seed = () if (args.no_seed_top or top_name is None) else (top_name,)
    if seed and top_rows > args.space:
        print(
            f"error: the top view needs {top_rows:g} rows, "
            f"more than the {args.space:g}-row budget "
            "(pass --no-seed-top to skip it)",
            file=sys.stderr,
        )
        return 2
    algorithm = ALGORITHMS[args.algorithm](args.fit)
    result = algorithm.run(graph, args.space, seed=seed)
    print(result.table())
    print()
    print(
        f"average query cost: {result.average_query_cost:g} rows "
        f"(no precomputation: {result.initial_tau / result.total_frequency:g})"
    )
    if args.output:
        save_selection(result, args.output)
        print(f"selection written to {args.output}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Explain a saved selection against its cube document."""
    import json

    from repro.analysis import explain

    graph, __, __rows = _load_graph(args.lattice, args.index_universe)
    with open(args.selection) as f:
        document = json.load(f)
    selected = document.get("selected")
    if not isinstance(selected, list):
        print("error: selection document has no 'selected' list", file=sys.stderr)
        return 2
    explanation = explain(graph, selected)
    print(explanation.table())
    print()
    print(
        f"benefit {explanation.benefit:g}; coverage {explanation.coverage():.0%}; "
        f"{len(explanation.raw_fallback_queries)} queries still on raw data"
    )
    return 0


def cmd_tpcd(args: argparse.Namespace) -> int:
    """Print the Example 2.1 comparison table."""
    from repro.datasets.tpcd import TPCD_SPACE_BUDGET
    from repro.experiments.example21 import format_example21, run_example21

    space = args.space if args.space is not None else TPCD_SPACE_BUDGET
    print(format_example21(run_example21(space=space)))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Delegate to the experiment registry."""
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.names)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    if args.command == "advise":
        return cmd_advise(args)
    if args.command == "explain":
        return cmd_explain(args)
    if args.command == "tpcd":
        return cmd_tpcd(args)
    if args.command == "experiments":
        return cmd_experiments(args)
    raise AssertionError(f"unhandled command {args.command!r}")
