"""Command-line advisor: what should this cube precompute?

Usage::

    python -m repro advise --lattice cube.json --space 25e6 \\
        --algorithm inner --output selection.json
    python -m repro advise ... --deadline 3600 --checkpoint run.ckpt
    python -m repro resume --lattice cube.json --checkpoint run.ckpt
    python -m repro tpcd                     # the paper's Example 2.1 demo
    python -m repro experiments [names...]   # regenerate paper tables
    python -m repro serve --dims 4 --queries 200 --record obs.jsonl \\
        --telemetry telemetry.json           # serve a synthetic workload
    python -m repro serve --dims 4 --queries 500 --workers 2 \\
        --cache-mb 16 --batch-size 64        # concurrent front-end + cache
    python -m repro replay --dims 4 --log obs.jsonl --workers 2 \\
        --adaptive                           # replay a recorded log
    python -m repro serve --dims 4 --queries 500 --replicas 4 \\
        --retry-attempts 3                   # fault-tolerant replica fleet
    python -m repro mine --lattice cube.json --log obs.jsonl \\
        --output mined.json                  # mine a log into candidates
    python -m repro advise --lattice cube.json --space 25e6 \\
        --prune-log obs.jsonl --benefit-bound 0.2   # pruned advise (d>=9)

``cube.json`` is the lattice document of :mod:`repro.io`: dimensions and
either exact per-view row counts or a raw row count for analytical
sizing.

Exit codes: 0 on success; 2 on bad input (malformed documents, missing
files, invalid budgets — one-line message on stderr, ``--traceback`` to
see the full stack); 3 when a run stopped early on a deadline, memory
budget, or signal — the best-so-far selection is still printed (and
written to ``--output``, flagged ``"interrupted": true``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    HRUGreedy,
    InnerLevelGreedy,
    RGreedy,
    TwoStep,
)
from repro.core.qvgraph import QueryViewGraph
from repro.io import (
    graph_from_dict,
    hierarchical_cube_from_dict,
    is_graph_document,
    is_hierarchical_document,
    lattice_from_dict,
    save_selection,
)

#: CLI exit codes (documented in docs/API.md).
EXIT_OK = 0
EXIT_ERROR = 2
EXIT_INTERRUPTED = 3

ALGORITHMS = {
    "1greedy": lambda fit, workers: RGreedy(1, fit=fit, workers=workers),
    "2greedy": lambda fit, workers: RGreedy(2, fit=fit, workers=workers),
    "3greedy": lambda fit, workers: RGreedy(3, fit=fit, workers=workers),
    "inner": lambda fit, workers: InnerLevelGreedy(fit=fit, workers=workers),
    "two-step": lambda fit, workers: TwoStep(0.5, fit=fit, workers=workers),
    "hru": lambda fit, workers: HRUGreedy(fit=fit, workers=workers),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index Selection for OLAP (ICDE 1997) — reproduction toolkit",
    )
    parser.add_argument(
        "--traceback",
        action="store_true",
        help="show full tracebacks for input errors instead of one-line "
        "messages",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    advise = sub.add_parser(
        "advise", help="select views and indexes for a cube under a space budget"
    )
    advise.add_argument(
        "--lattice", required=True, help="lattice JSON document (see repro.io)"
    )
    advise.add_argument(
        "--space", required=True, type=float, help="space budget in rows"
    )
    advise.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="inner",
        help="selection algorithm (default: inner-level greedy)",
    )
    advise.add_argument(
        "--fit",
        choices=(FIT_STRICT, FIT_PAPER),
        default=FIT_STRICT,
        help="space-fit policy (default: strict — never exceed the budget)",
    )
    advise.add_argument(
        "--no-seed-top",
        action="store_true",
        help="do not force-materialize the top view (default: seed it, "
        "since the base data cannot be computed from anything else)",
    )
    advise.add_argument(
        "--index-universe",
        choices=("fat", "all", "none"),
        default="fat",
        help="candidate indexes per view (default: fat only, per §4.2.2)",
    )
    advise.add_argument("--output", help="write the selection as JSON here")
    advise.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds; past it the run stops at the "
        "next stage boundary with the best-so-far selection (exit 3)",
    )
    advise.add_argument(
        "--memory-limit-mb",
        type=float,
        default=None,
        help="peak-RSS budget in MiB, checked at stage boundaries (exit 3)",
    )
    advise.add_argument(
        "--checkpoint",
        default=None,
        help="write a resumable checkpoint here after every committed "
        "stage (see 'repro resume')",
    )
    advise.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel stage evaluation: 0 = auto-size to this machine "
        "(serial on small problems), N >= 2 forces N workers; default "
        "follows REPRO_WORKERS (unset = serial).  The selection is "
        "bit-identical at any worker count",
    )
    advise.add_argument(
        "--prune-log",
        default=None,
        help="mine this recorded query log (JSONL, e.g. from 'repro serve "
        "--record') into a pruned candidate space and advise on it "
        "instead of the full 3^n universe — the d>=9 scale path",
    )
    advise.add_argument(
        "--support",
        type=float,
        default=None,
        help="with --prune-log: minimum workload support for a mined "
        "query cluster to sponsor candidates (default 0.01)",
    )
    advise.add_argument(
        "--similarity",
        type=float,
        default=None,
        help="with --prune-log: Jaccard attribute-set similarity for "
        "merging clusters (default 0.5)",
    )
    advise.add_argument(
        "--max-indexes-per-view",
        type=int,
        default=None,
        help="with --prune-log: cap on mined fat-index keys per kept "
        "view (default 8)",
    )
    advise.add_argument(
        "--benefit-bound",
        type=float,
        default=None,
        help="with --prune-log: fail (exit 2) when the certified "
        "forgone-benefit bound exceeds this fraction of the "
        "no-precomputation cost",
    )

    mine = sub.add_parser(
        "mine",
        help="mine a recorded query log into a pruned candidate space "
        "and report what pruning keeps, drops, and certifiably forgoes",
    )
    mine.add_argument(
        "--lattice", required=True, help="lattice JSON document (see repro.io)"
    )
    mine.add_argument(
        "--log",
        required=True,
        help="query log JSONL (e.g. from 'repro serve --record')",
    )
    mine.add_argument(
        "--support",
        type=float,
        default=None,
        help="minimum workload support for a cluster to sponsor "
        "candidates (default 0.01)",
    )
    mine.add_argument(
        "--similarity",
        type=float,
        default=None,
        help="Jaccard attribute-set similarity for merging clusters "
        "(default 0.5)",
    )
    mine.add_argument(
        "--max-indexes-per-view",
        type=int,
        default=None,
        help="cap on mined fat-index keys per kept view (default 8)",
    )
    mine.add_argument(
        "--output", help="write the mined-candidate report JSON here"
    )

    resume = sub.add_parser(
        "resume",
        help="continue an interrupted advise run from its checkpoint",
    )
    resume.add_argument(
        "--lattice", required=True, help="the same cube document the "
        "interrupted run used"
    )
    resume.add_argument(
        "--checkpoint", required=True, help="checkpoint file written by "
        "advise --checkpoint"
    )
    resume.add_argument(
        "--index-universe", choices=("fat", "all", "none"), default="fat",
        help="must match the interrupted run (the checkpoint's graph "
        "fingerprint is verified)",
    )
    resume.add_argument("--output", help="write the selection as JSON here")
    resume.add_argument("--deadline", type=float, default=None)
    resume.add_argument("--memory-limit-mb", type=float, default=None)
    resume.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the worker count for the resumed run (0 = auto); "
        "checkpoints resume identically at any worker count",
    )

    explain = sub.add_parser(
        "explain", help="explain a saved selection: per-query plans and value"
    )
    explain.add_argument("--lattice", required=True, help="lattice JSON document")
    explain.add_argument(
        "--selection", required=True, help="selection JSON (from advise --output)"
    )
    explain.add_argument(
        "--index-universe", choices=("fat", "all", "none"), default="fat"
    )

    partition = sub.add_parser(
        "partition",
        help="split a recorded workload into balanced partitions and "
        "advise one divergent selection per replica",
    )
    partition.add_argument(
        "--dims",
        type=int,
        default=4,
        choices=(3, 4, 5),
        help="dimensions of the dense serving cube (default: 4)",
    )
    partition.add_argument(
        "--log", required=True, help="query log JSONL from repro serve --record"
    )
    partition.add_argument(
        "--partitions",
        type=int,
        default=3,
        help="replica count / workload partitions (default: 3)",
    )
    partition.add_argument(
        "--space",
        type=float,
        default=None,
        help="per-replica space budget in rows (default: 3x the top view)",
    )
    partition.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="1greedy",
        help="selection algorithm run per partition (default: 1greedy)",
    )
    partition.add_argument(
        "--similarity",
        type=float,
        default=None,
        help="Jaccard attribute-set similarity for clustering "
        "(default: 0.5)",
    )
    partition.add_argument(
        "--support",
        type=float,
        default=0.0,
        help="candidate-mining support threshold per partition "
        "(default: 0)",
    )
    partition.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads handed to the per-partition advisor",
    )
    partition.add_argument(
        "--checkpoint",
        default=None,
        help="advisor checkpoint path (each partition a resumable stage)",
    )
    partition.add_argument(
        "--output",
        default=None,
        help="write the divergence report JSON here",
    )

    tpcd = sub.add_parser("tpcd", help="run the paper's Example 2.1 demo")
    tpcd.add_argument(
        "--space", type=float, default=None, help="override the 25M-row budget"
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("names", nargs="*", help="subset of experiments")

    def serving_flags(command, log_flags):
        command.add_argument(
            "--dims",
            type=int,
            default=4,
            choices=(3, 4, 5),
            help="dimensions of the dense serving cube (default: 4)",
        )
        command.add_argument(
            "--selection",
            help="selection JSON from advise --output; default: advise "
            "inline with --algorithm under --space",
        )
        command.add_argument(
            "--space",
            type=float,
            default=None,
            help="space budget in rows for the inline advise "
            "(default: 3x the top view)",
        )
        command.add_argument(
            "--algorithm",
            choices=sorted(ALGORITHMS),
            default="1greedy",
            help="algorithm for inline advise and re-advise (default: 1greedy)",
        )
        command.add_argument(
            "--workers",
            type=int,
            default=None,
            help="serving front-end worker threads (>= 2 runs the "
            "concurrent front-end; default: serial batched serving); "
            "also handed to the (re-)advise algorithm",
        )
        command.add_argument(
            "--batch-size",
            type=int,
            default=None,
            help="queries answered per vectorized serve_batch pass "
            "(default: 64)",
        )
        command.add_argument(
            "--cache-mb",
            type=float,
            default=None,
            help="result-cache capacity in MiB (0 disables the cache; "
            "default: 0)",
        )
        command.add_argument(
            "--record", help="append every served query to this JSONL log"
        )
        command.add_argument(
            "--telemetry", help="write the telemetry snapshot JSON here"
        )
        command.add_argument(
            "--adaptive",
            action="store_true",
            help="monitor workload drift and re-advise in the background, "
            "hot-swapping the selection when the new one wins by --margin",
        )
        command.add_argument(
            "--full-readvise",
            action="store_true",
            help="re-advise on the full 3^n candidate universe instead of "
            "workload-mined candidates (only feasible at small d)",
        )
        command.add_argument(
            "--drift-threshold",
            type=float,
            default=None,
            help="total-variation distance that counts as drift "
            "(default: 0.25)",
        )
        command.add_argument(
            "--drift-min-queries",
            type=int,
            default=None,
            help="observations required before drift can trigger "
            "(default: 50)",
        )
        command.add_argument(
            "--margin",
            type=float,
            default=None,
            help="relative cost improvement a re-advised selection needs "
            "to be swapped in (default: 0.05)",
        )
        command.add_argument(
            "--deadline",
            type=float,
            default=None,
            help="wall-clock budget in seconds for each background "
            "re-advise",
        )
        command.add_argument(
            "--checkpoint",
            default=None,
            help="checkpoint path for the background re-advise runs",
        )
        command.add_argument(
            "--fail-on-fallback",
            action="store_true",
            help="exit 1 if any query fell back to a raw-cube scan",
        )
        command.add_argument(
            "--replicas",
            type=int,
            default=1,
            help=">= 2 serves through a supervised replica fleet with "
            "health-checked routing and retry/failover; the single-server "
            "features --adaptive and --record are rejected on the fleet "
            "path (default: 1, single server)",
        )
        command.add_argument(
            "--divergent",
            action="store_true",
            help="partition the workload by attribute-set similarity, "
            "advise one divergent selection per replica under the same "
            "per-replica budget, and dispatch each query to its "
            "predicted-cheapest replica (requires --replicas >= 2)",
        )
        command.add_argument(
            "--query-deadline",
            type=float,
            default=None,
            help="fleet per-attempt answer deadline in seconds before "
            "the router re-routes (default: 2.0)",
        )
        command.add_argument(
            "--retry-attempts",
            type=int,
            default=None,
            help="fleet attempts per query, with jittered exponential "
            "backoff between them (default: 3)",
        )
        command.add_argument(
            "--probe-interval",
            type=float,
            default=None,
            help="seconds between background fleet health sweeps "
            "(default: no background probing)",
        )
        command.add_argument(
            "--backend",
            choices=("engine", "sqlite"),
            default="engine",
            help="execution backend: the in-process row engine, or a "
            "mirrored SQLite database with real CREATE INDEX structures "
            "(single-server only; default: engine)",
        )
        log_flags(command)

    serve = sub.add_parser(
        "serve",
        help="materialize a selection and serve a synthetic query workload",
    )
    serving_flags(
        serve,
        lambda c: (
            c.add_argument(
                "--queries",
                type=int,
                default=200,
                help="number of synthetic queries to serve (default: 200)",
            ),
            c.add_argument(
                "--rng",
                type=int,
                default=0,
                help="random seed for the synthetic workload (default: 0)",
            ),
            c.add_argument(
                "--zipf",
                type=float,
                default=1.0,
                help="Zipf exponent of the synthetic pattern mix "
                "(default: 1.0)",
            ),
        ),
    )

    replay = sub.add_parser(
        "replay",
        help="replay a recorded query log against a materialized selection",
    )
    serving_flags(
        replay,
        lambda c: c.add_argument(
            "--log", required=True, help="query log JSONL to replay"
        ),
    )

    validate_cost = sub.add_parser(
        "validate-cost",
        help="execute a workload on both the row engine and SQLite, "
        "assert identical answers, and report measured-vs-predicted "
        "cost correlation per structure class",
    )
    validate_cost.add_argument(
        "--dims",
        type=int,
        default=4,
        choices=(3, 4, 5),
        help="dimensions of the dense serving cube (default: 4)",
    )
    validate_cost.add_argument(
        "--selection",
        help="selection JSON from advise --output; default: advise "
        "inline with --algorithm under --space",
    )
    validate_cost.add_argument(
        "--space",
        type=float,
        default=None,
        help="space budget in rows for the inline advise "
        "(default: 3x the top view)",
    )
    validate_cost.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="1greedy",
        help="algorithm for the inline advise (default: 1greedy)",
    )
    validate_cost.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the inline advise (default: serial)",
    )
    validate_cost.add_argument(
        "--queries",
        type=int,
        default=300,
        help="synthetic workload size (default: 300)",
    )
    validate_cost.add_argument(
        "--rng", type=int, default=0, help="workload seed (default: 0)"
    )
    validate_cost.add_argument(
        "--output", help="write the correlation report JSON here"
    )
    return parser


def _load_graph(path: str, index_universe: str):
    """Load a cube document (flat or hierarchical) and compile its graph.

    Returns ``(graph, top_name, top_rows)``.
    """
    import json

    with open(path) as f:
        document = json.load(f)
    if is_graph_document(document):
        graph = graph_from_dict(document)
        # a raw graph has no distinguished top view; no automatic seed
        return graph, None, 0.0
    if is_hierarchical_document(document):
        from repro.core.hierarchy import hierarchical_lattice_graph

        cube = hierarchical_cube_from_dict(document)
        cap = document.get("max_fat_indexes_per_view")
        graph = hierarchical_lattice_graph(cube, max_fat_indexes_per_view=cap)
        return graph, cube.label(cube.top()), cube.size(cube.top())
    lattice = lattice_from_dict(document)
    graph = QueryViewGraph.from_cube(lattice, index_universe=index_universe)
    return graph, lattice.label(lattice.top), lattice.size(lattice.top)


def _report_result(result, output: Optional[str]) -> int:
    """Print a selection result (complete or partial) and persist it."""
    print(result.table())
    print()
    print(
        f"average query cost: {result.average_query_cost:g} rows "
        f"(no precomputation: {result.initial_tau / result.total_frequency:g})"
    )
    if output:
        save_selection(result, output)
        print(f"selection written to {output}")
    return EXIT_INTERRUPTED if result.interrupted else EXIT_OK


def _run_with_context(
    algorithm, graph, space, seed, args, graph_factory=None, finish=None
) -> int:
    """Run an algorithm under the runtime context the flags describe.

    Without runtime flags this is a plain call.  With them, the run gets
    budgets, stage checkpointing, and signal handlers; an early stop
    still reports (and saves) the best-so-far selection, exiting 3.

    ``graph_factory(context)`` (context is ``None`` on the plain path)
    lets the pruned-advise path declare its mining stage a kill/resume
    boundary before the graph exists; ``finish(result)`` overrides the
    default reporting so callers can append bound checks.
    """
    from repro.runtime import RunContext, RuntimeStop

    if finish is None:
        finish = lambda result: _report_result(result, args.output)  # noqa: E731
    resume_from = getattr(args, "resume_from", None)
    wants_context = (
        args.deadline is not None
        or args.memory_limit_mb is not None
        or args.checkpoint is not None
        or resume_from is not None
    )
    if not wants_context:
        if graph_factory is not None:
            graph = graph_factory(None)
        return finish(algorithm.run(graph, space, seed=seed))
    context = RunContext(
        deadline=args.deadline,
        memory_limit_mb=args.memory_limit_mb,
        checkpoint_path=args.checkpoint,
        resume_from=resume_from,
    )
    try:
        with context.handle_signals():
            if graph_factory is not None:
                graph = graph_factory(context)
            result = algorithm.run(graph, space, seed=seed, context=context)
    except RuntimeStop as stop:
        print(f"run stopped early: {stop}", file=sys.stderr)
        if args.checkpoint:
            print(
                f"resume with: repro resume --lattice {args.lattice} "
                f"--checkpoint {args.checkpoint}",
                file=sys.stderr,
            )
        if stop.result is None:
            return EXIT_INTERRUPTED  # stopped before the first stage
        return finish(stop.result)
    return finish(result)


def _load_flat_lattice(path: str):
    """Load a lattice document that must be a flat cube (mining needs
    exact per-attribute cardinalities to enumerate candidate keys)."""
    import json

    with open(path) as f:
        document = json.load(f)
    if is_graph_document(document) or is_hierarchical_document(document):
        raise ValueError(
            f"{path}: workload mining needs a flat cube lattice document "
            "(dimensions + sizes), not a raw graph or hierarchical cube"
        )
    return lattice_from_dict(document)


def _mine_log(lattice, log_path: str, args: argparse.Namespace):
    """Stream a JSONL query log and mine it into candidates."""
    from repro.cube.query_log import pattern_counts
    from repro.io import iter_query_log
    from repro.mining import mine_candidates

    counts = pattern_counts(iter_query_log(log_path, lattice.schema))
    if not counts:
        raise ValueError(f"{log_path}: query log is empty, nothing to mine")
    kwargs = {}
    if args.support is not None:
        kwargs["support"] = args.support
    if args.similarity is not None:
        kwargs["similarity"] = args.similarity
    if args.max_indexes_per_view is not None:
        kwargs["max_indexes_per_view"] = args.max_indexes_per_view
    return mine_candidates(counts, lattice.schema.names, **kwargs)


def _mining_record(mined, log_path: str) -> dict:
    """The checkpoint payload that proves a resume re-mined identically."""
    return {
        "log": str(log_path),
        "support": mined.support,
        "similarity": mined.similarity,
        "max_indexes_per_view": mined.max_indexes_per_view,
        "fingerprint": mined.fingerprint(),
    }


def _advise_pruned(args: argparse.Namespace) -> int:
    """The --prune-log path: mine, bound, advise on the pruned graph."""
    from repro.core.index import count_fat_indexes
    from repro.mining import compute_benefit_bound

    lattice = _load_flat_lattice(args.lattice)
    if args.index_universe != "fat":
        raise ValueError(
            "--prune-log mines fat index keys; --index-universe must be 'fat'"
        )
    mined = _mine_log(lattice, args.prune_log, args)
    bound = compute_benefit_bound(mined, lattice)
    record = _mining_record(mined, args.prune_log)
    n = lattice.schema.n_dims
    print(
        f"mined {mined.n_views} views + {mined.n_indexes} indexes from "
        f"{mined.n_queries} observed patterns "
        f"(full universe: {2 ** n} views + {count_fat_indexes(n)} indexes, "
        f"{3 ** n} patterns)"
    )

    top_label = lattice.label(lattice.top)
    top_rows = lattice.size(lattice.top)
    seed = () if args.no_seed_top else (top_label,)
    if seed and top_rows > args.space:
        print(
            f"error: the top view needs {top_rows:g} rows, "
            f"more than the {args.space:g}-row budget "
            "(pass --no-seed-top to skip it)",
            file=sys.stderr,
        )
        return EXIT_ERROR

    def graph_factory(context):
        if context is not None:
            context.mining_boundary(record)
        return QueryViewGraph.from_mined(lattice, mined)

    def finish(result) -> int:
        code = _report_result(result, args.output)
        forgone = bound.forgone_bound(result.tau)
        relative = (
            forgone / result.initial_tau if result.initial_tau > 0 else 0.0
        )
        print(
            f"pruning bound: forgone benefit <= {forgone:g} rows "
            f"({relative:.2%} of the no-precomputation cost); "
            f"ideal tau {bound.ideal_tau:g}, kept tau {bound.kept_tau:g}"
        )
        if args.benefit_bound is not None and relative > args.benefit_bound:
            print(
                f"error: certified forgone-benefit bound {relative:.3g} "
                f"exceeds --benefit-bound {args.benefit_bound:g}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        return code

    algorithm = ALGORITHMS[args.algorithm](args.fit, args.workers)
    return _run_with_context(
        algorithm,
        None,
        args.space,
        seed,
        args,
        graph_factory=graph_factory,
        finish=finish,
    )


def cmd_mine(args: argparse.Namespace) -> int:
    """Mine a recorded query log and report the pruned candidate space."""
    from repro.core.index import count_fat_indexes
    from repro.mining import (
        compute_benefit_bound,
        mining_report,
        save_mining_report,
    )

    lattice = _load_flat_lattice(args.lattice)
    mined = _mine_log(lattice, args.log, args)
    bound = compute_benefit_bound(mined, lattice)
    n = lattice.schema.n_dims
    print(
        f"workload: {mined.total_weight:g} queries over {mined.n_queries} "
        f"distinct patterns; {len(mined.clusters)} clusters "
        f"({mined.kept_clusters} above support {mined.support:g}, "
        f"{mined.dropped_weight:g} weight dropped)"
    )
    print(
        f"candidates kept: {mined.n_views} / {2 ** n} views, "
        f"{mined.n_indexes} / {count_fat_indexes(n)} fat indexes"
    )
    from repro.core.view import View

    for cluster in mined.clusters[:10]:
        attrs = lattice.label(View(cluster.attrs))
        kept = "kept" if cluster.support >= mined.support else "dropped"
        print(
            f"  cluster {attrs}: {cluster.size} patterns, "
            f"weight {cluster.weight:g} (support {cluster.support:.3f}, {kept})"
        )
    if len(mined.clusters) > 10:
        print(f"  ... and {len(mined.clusters) - 10} more clusters")
    print(
        f"unlimited-budget pruning gap: {bound.pruning_gap:g} rows "
        f"(kept tau {bound.kept_tau:g} vs ideal tau {bound.ideal_tau:g})"
    )
    if args.output:
        save_mining_report(mining_report(mined, bound, lattice), args.output)
        print(f"mined-candidate report written to {args.output}")
    return EXIT_OK


def cmd_advise(args: argparse.Namespace) -> int:
    """Run a selection algorithm on the cube document and report it."""
    mining_flags = (
        args.support,
        args.similarity,
        args.max_indexes_per_view,
        args.benefit_bound,
    )
    if args.prune_log is None and any(f is not None for f in mining_flags):
        raise ValueError(
            "--support/--similarity/--max-indexes-per-view/--benefit-bound "
            "require --prune-log"
        )
    if args.prune_log is not None:
        return _advise_pruned(args)
    graph, top_name, top_rows = _load_graph(args.lattice, args.index_universe)
    seed = () if (args.no_seed_top or top_name is None) else (top_name,)
    if seed and top_rows > args.space:
        print(
            f"error: the top view needs {top_rows:g} rows, "
            f"more than the {args.space:g}-row budget "
            "(pass --no-seed-top to skip it)",
            file=sys.stderr,
        )
        return EXIT_ERROR
    algorithm = ALGORITHMS[args.algorithm](args.fit, args.workers)
    return _run_with_context(algorithm, graph, args.space, seed, args)


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted advise run from its checkpoint."""
    from repro.runtime import load_checkpoint
    from repro.runtime.checkpoint import algorithm_from_config
    from repro.runtime.context import MINING_EXTRA_KEY

    checkpoint = load_checkpoint(args.checkpoint)
    mining = (checkpoint.extra or {}).get(MINING_EXTRA_KEY)
    graph = None
    graph_factory = None
    if mining:
        # a pruned-advise checkpoint: re-mine the recorded log with the
        # recorded parameters; mining_boundary verifies the fingerprint
        lattice = _load_flat_lattice(args.lattice)
        mine_args = argparse.Namespace(
            support=mining["support"],
            similarity=mining["similarity"],
            max_indexes_per_view=mining["max_indexes_per_view"],
        )

        def graph_factory(context):
            mined = _mine_log(lattice, mining["log"], mine_args)
            if context is not None:
                context.mining_boundary(_mining_record(mined, mining["log"]))
            return QueryViewGraph.from_mined(lattice, mined)

    else:
        graph, __top, __rows = _load_graph(args.lattice, args.index_universe)
    algorithm = algorithm_from_config(checkpoint.algorithm)
    if args.workers is not None and hasattr(algorithm, "workers"):
        algorithm.workers = args.workers
    args.resume_from = checkpoint
    print(
        f"resuming {checkpoint.algorithm['class']} from stage "
        f"{checkpoint.stage_counter} "
        f"({len(checkpoint.selected)} structures selected, "
        f"{checkpoint.remaining_space:g} rows of budget left)"
    )
    return _run_with_context(
        algorithm,
        graph,
        checkpoint.space_budget,
        checkpoint.seed,
        args,
        graph_factory=graph_factory,
    )


def cmd_explain(args: argparse.Namespace) -> int:
    """Explain a saved selection against its cube document."""
    import json

    from repro.analysis import explain

    graph, __, __rows = _load_graph(args.lattice, args.index_universe)
    with open(args.selection) as f:
        document = json.load(f)
    selected = document.get("selected")
    if not isinstance(selected, list):
        print("error: selection document has no 'selected' list", file=sys.stderr)
        return EXIT_ERROR
    explanation = explain(graph, selected)
    print(explanation.table())
    print()
    print(
        f"benefit {explanation.benefit:g}; coverage {explanation.coverage():.0%}; "
        f"{len(explanation.raw_fallback_queries)} queries still on raw data"
    )
    return 0


def cmd_tpcd(args: argparse.Namespace) -> int:
    """Print the Example 2.1 comparison table."""
    from repro.datasets.tpcd import TPCD_SPACE_BUDGET
    from repro.experiments.example21 import format_example21, run_example21

    space = args.space if args.space is not None else TPCD_SPACE_BUDGET
    print(format_example21(run_example21(space=space)))
    return 0


def _serving_selection(args: argparse.Namespace, integral_measures: bool = False):
    """Shared serve/replay fixture: cube, cost model, and the selection.

    Returns ``(schema, fact, model, selected, space, top_label)``.
    ``integral_measures`` builds the cube with whole-number measures —
    the fixture ``validate-cost`` uses so engine-vs-SQLite sums are
    order-exact and byte-comparable.
    """
    import json

    from repro.core.costmodel import LinearCostModel
    from repro.datasets.tpcd import tpcd_serving_fact, tpcd_serving_schema

    schema = tpcd_serving_schema(args.dims)
    fact = tpcd_serving_fact(args.dims, integral_measures=integral_measures)
    model = LinearCostModel.from_fact(fact)
    lattice = model.lattice
    top_label = lattice.label(lattice.top)
    space = (
        args.space if args.space is not None else 3.0 * lattice.size(lattice.top)
    )
    if args.selection:
        with open(args.selection) as f:
            document = json.load(f)
        selected = document.get("selected")
        if not isinstance(selected, list):
            raise ValueError(
                f"{args.selection}: selection document has no 'selected' list"
            )
    else:
        algorithm = ALGORITHMS[args.algorithm](FIT_STRICT, args.workers)
        graph = QueryViewGraph.from_cube(lattice)
        selected = algorithm.run(graph, space, seed=(top_label,)).selected
    return schema, fact, model, selected, space, top_label


def _build_server(args: argparse.Namespace):
    """Shared serve/replay setup: cube, selection, server.

    Returns ``(schema, server, recorder)`` — the recorder is ``None``
    unless ``--record`` was given.
    """
    from repro.core.query import enumerate_slice_queries
    from repro.serve import (
        AdaptiveReselector,
        QueryServer,
        ResultCache,
        WorkloadRecorder,
    )

    schema, fact, model, selected, space, top_label = _serving_selection(args)
    lattice = model.lattice
    advised = {q: 1.0 for q in enumerate_slice_queries(schema.names)}
    reselector = None
    if args.adaptive:
        reselector = AdaptiveReselector(
            lattice,
            ALGORITHMS[args.algorithm](FIT_STRICT, args.workers),
            space,
            margin=args.margin if args.margin is not None else 0.05,
            seed=(top_label,),
            deadline=args.deadline,
            checkpoint_path=args.checkpoint,
            prune=not args.full_readvise,
        )
    recorder = WorkloadRecorder(args.record) if args.record else None
    cache = None
    if args.cache_mb is not None and args.cache_mb > 0:
        cache = ResultCache(capacity_bytes=int(args.cache_mb * 2**20))
    backend = None
    if getattr(args, "backend", "engine") == "sqlite":
        from repro.backends import SqliteBackend

        backend = SqliteBackend()
    server = QueryServer(
        fact,
        selected,
        cost_model=model,
        advised=advised,
        recorder=recorder,
        reselector=reselector,
        cache=cache,
        drift_threshold=args.drift_threshold,
        drift_min_queries=args.drift_min_queries,
        backend=backend,
    )
    return schema, server, recorder


def _report_serving(args: argparse.Namespace, server, report, recorder) -> int:
    """Print the serving summary, persist telemetry, pick the exit code."""
    import json

    from repro.serve import validate_telemetry

    server.close(timeout=60)
    snapshot = validate_telemetry(server.telemetry_snapshot())
    cost = snapshot["cost"]
    print(
        f"served {report.queries} queries at {report.qps:.0f} q/s "
        f"(p50 {report.p50_us:.0f} us, p99 {report.p99_us:.0f} us, "
        f"workers {report.workers}, batch {report.batch_size})"
    )
    print(
        f"rows scanned {cost['actual_rows']:g} "
        f"(predicted {cost['predicted_rows']:g}, "
        f"{cost['exact_matches']}/{report.queries} exact); "
        f"{report.fallbacks} raw-cube fallbacks; "
        f"{snapshot['swaps']} selection swaps"
    )
    if server.backend is not None:
        print(
            f"backend: sqlite ({server.backend.reloads} mirror "
            f"{'rebuild' if server.backend.reloads == 1 else 'rebuilds'})"
        )
    cache = snapshot["cache"]
    if cache["enabled"]:
        lookups = cache["hits"] + cache["misses"]
        rate = cache["hits"] / lookups if lookups else 0.0
        print(
            f"result cache: {cache['hits']} hits / {lookups} lookups "
            f"({rate:.0%}), {cache['entries']} entries "
            f"({cache['bytes']} bytes), {cache['evictions']} evictions, "
            f"{cache['invalidations']} invalidations"
        )
    if args.telemetry:
        with open(args.telemetry, "w") as f:
            json.dump(snapshot, f, indent=2, sort_keys=True)
        print(f"telemetry written to {args.telemetry}")
    if args.record:
        print(f"workload recorded to {args.record}")
    if args.fail_on_fallback and report.fallbacks:
        print(
            f"error: {report.fallbacks} queries fell back to the raw cube",
            file=sys.stderr,
        )
        return 1
    return EXIT_OK


def _serve_fleet(args: argparse.Namespace, entries) -> int:
    """Serve a workload through a supervised replica fleet
    (``--replicas >= 2``): health-checked routing, per-query deadlines,
    retry/failover, per-structure circuit breakers."""
    import json
    import time as _time

    from repro.serve import (
        DEFAULT_BATCH_SIZE,
        DEFAULT_QUERY_DEADLINE,
        ReplicaFleet,
        RetryPolicy,
        ServingError,
        validate_telemetry,
    )
    from repro.serve.telemetry import _percentile

    if args.adaptive or args.record:
        raise ValueError(
            "the single-server features --adaptive and --record are "
            "rejected on the fleet path; drop them or use --replicas 1"
        )
    __schema, fact, model, selected, space, top_label = _serving_selection(args)
    selections = selected
    router = None
    ratio = None
    if getattr(args, "divergent", False):
        from repro.cube.query_log import pattern_counts
        from repro.distributed import divergence_report, plan_divergent

        counts = pattern_counts(entries)
        lattice = model.lattice
        partitioned, advice, router = plan_divergent(
            lattice,
            counts,
            ALGORITHMS[args.algorithm](FIT_STRICT, args.workers),
            space,
            args.replicas,
            seed=(top_label,),
            cost_model=model,
        )
        selections = advice.selections
        divergence = divergence_report(
            model, counts, advice, selected,
            partitioned=partitioned, router=router,
        )
        ratio = divergence["predicted_cost_ratio"]
    retry = RetryPolicy(
        max_attempts=(
            args.retry_attempts if args.retry_attempts is not None else 3
        )
    )
    fleet = ReplicaFleet(
        fact,
        selections,
        replicas=args.replicas,
        cost_model=model,
        router=router,
        workers=max(1, args.workers or 1),
        batch_size=(
            args.batch_size if args.batch_size is not None else DEFAULT_BATCH_SIZE
        ),
        cache_bytes=(
            int(args.cache_mb * 2**20) if args.cache_mb else 0
        ),
        retry=retry,
        query_deadline=(
            args.query_deadline
            if args.query_deadline is not None
            else DEFAULT_QUERY_DEADLINE
        ),
        probe_interval=args.probe_interval,
    )
    if router is not None:
        sizes = "/".join(str(len(s)) for s in selections)
        print(
            f"serving {len(entries)} queries through {args.replicas} "
            f"divergent replicas ({sizes} structures materialized; "
            f"predicted-cost ratio {ratio:.4f} vs identical copies)"
        )
    else:
        print(
            f"serving {len(entries)} queries through {args.replicas} "
            f"replicas ({len(selected)} structures materialized per replica)"
        )
    start = _time.perf_counter()
    results = fleet.serve_many(entries)
    seconds = _time.perf_counter() - start
    fleet.close()
    failed = sum(1 for r in results if isinstance(r, ServingError))
    served = [r for r in results if not isinstance(r, ServingError)]
    fallbacks = sum(1 for r in served if r.fallback)
    latencies = [r.latency_us for r in served]
    stats = fleet.stats()
    qps = len(served) / seconds if seconds > 0 else 0.0
    print(
        f"served {len(served)}/{len(entries)} queries at {qps:.0f} q/s "
        f"(p50 {_percentile(latencies, 0.5):.0f} us, "
        f"p99 {_percentile(latencies, 0.99):.0f} us, {failed} failed typed)"
    )
    print(
        f"fleet: {stats['healthy']}/{args.replicas} replicas healthy, "
        f"{stats['retries']} retries, {stats['deadline_timeouts']} deadline "
        f"timeouts, {stats['unavailable_seconds']:.2f}s unavailable, "
        f"{fallbacks} raw-cube fallbacks"
    )
    if router is not None:
        fleet_counters = stats["fleet"]
        print(
            f"routing: {sum(fleet_counters['routed_hits'].values())} queries "
            f"on their predicted-cheapest replica, "
            f"{sum(fleet_counters['misroutes'].values())} misroutes"
        )
    if args.telemetry:
        snapshot = validate_telemetry(fleet.merged_telemetry().snapshot())
        snapshot["fleet"].update(
            {
                "replicas": args.replicas,
                "healthy": stats["healthy"],
                "routed": stats["routed"],
                "exhausted": stats["exhausted"],
                "unavailable_seconds": stats["unavailable_seconds"],
                "routed_dispatch": stats["routed_dispatch"],
            }
        )
        if ratio is not None:
            snapshot["fleet"]["predicted_cost_ratio"] = ratio
        with open(args.telemetry, "w") as f:
            json.dump(snapshot, f, indent=2, sort_keys=True)
        print(f"telemetry written to {args.telemetry}")
    if args.fail_on_fallback and fallbacks:
        print(
            f"error: {fallbacks} queries fell back to the raw cube",
            file=sys.stderr,
        )
        return 1
    return 1 if failed else EXIT_OK


def cmd_partition(args: argparse.Namespace) -> int:
    """Partition a recorded workload and advise per-replica selections."""
    from repro.core.costmodel import LinearCostModel
    from repro.cube.query_log import pattern_counts
    from repro.datasets.tpcd import tpcd_serving_fact
    from repro.distributed import (
        divergence_report,
        plan_divergent,
        save_divergence_report,
    )
    from repro.io import iter_query_log

    model = LinearCostModel.from_fact(tpcd_serving_fact(args.dims))
    lattice = model.lattice
    schema = lattice.schema
    top_label = lattice.label(lattice.top)
    space = (
        args.space if args.space is not None else 3.0 * lattice.size(lattice.top)
    )
    counts = pattern_counts(iter_query_log(args.log, schema))
    if not counts:
        raise ValueError(f"{args.log}: query log is empty, nothing to partition")
    partitioned, advice, router = plan_divergent(
        lattice,
        counts,
        ALGORITHMS[args.algorithm](FIT_STRICT, args.workers),
        space,
        args.partitions,
        seed=(top_label,),
        similarity=args.similarity,
        support=args.support,
        cost_model=model,
        checkpoint_path=args.checkpoint,
    )
    identical = (
        ALGORITHMS[args.algorithm](FIT_STRICT, args.workers)
        .run(
            QueryViewGraph.from_cube(lattice, frequencies=counts),
            space,
            seed=(top_label,),
        )
        .selected
    )
    report = divergence_report(
        model, counts, advice, identical, partitioned=partitioned, router=router
    )
    print(
        f"partitioned {sum(p.n_patterns for p in partitioned.partitions)} "
        f"patterns (weight {partitioned.total_weight:g}) into "
        f"{args.partitions} slices"
    )
    for plan, part in zip(advice.plans, partitioned.partitions):
        print(
            f"  replica {plan.replica_id}: {part.n_patterns} patterns "
            f"(weight {part.weight:g}), {len(plan.selection)} structures, "
            f"tau {plan.tau:g}, space {plan.space_used:g}"
            + (" [resumed]" if plan.resumed else "")
        )
    print(
        f"predicted-cost ratio {report['predicted_cost_ratio']:.4f} "
        f"(divergent {report['divergent_predicted_cost']:g} vs identical "
        f"{report['identical_predicted_cost']:g})"
    )
    if args.output:
        save_divergence_report(report, args.output)
        print(f"divergence report written to {args.output}")
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    """Materialize a selection and serve a synthetic workload."""
    from repro.cube.query_log import generate_query_log
    from repro.datasets.tpcd import tpcd_serving_schema

    if args.divergent and args.replicas < 2:
        raise ValueError("--divergent requires --replicas >= 2")
    if args.backend == "sqlite" and args.replicas >= 2:
        raise ValueError("--backend sqlite serves single-server only")
    if args.replicas >= 2:
        schema = tpcd_serving_schema(args.dims)
        log = generate_query_log(
            schema, args.queries, rng=args.rng, zipf_exponent=args.zipf
        )
        return _serve_fleet(args, log)
    schema, server, recorder = _build_server(args)
    log = generate_query_log(
        schema, args.queries, rng=args.rng, zipf_exponent=args.zipf
    )
    print(
        f"serving {len(log)} queries over {args.dims} dimensions "
        f"({len(server.selection)} structures materialized)"
    )
    report = server.replay(log, workers=args.workers, batch_size=args.batch_size)
    return _report_serving(args, server, report, recorder)


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a recorded query log, optionally with worker threads."""
    from repro.io import load_query_log

    if args.divergent and args.replicas < 2:
        raise ValueError("--divergent requires --replicas >= 2")
    if args.backend == "sqlite" and args.replicas >= 2:
        raise ValueError("--backend sqlite serves single-server only")
    if args.replicas >= 2:
        from repro.datasets.tpcd import tpcd_serving_schema

        schema = tpcd_serving_schema(args.dims)
        log = load_query_log(args.log, schema)
        if not log:
            print(f"{args.log}: empty query log, nothing to replay")
            return EXIT_OK
        return _serve_fleet(args, log)
    schema, server, recorder = _build_server(args)
    log = load_query_log(args.log, schema)
    if not log:
        print(f"{args.log}: empty query log, nothing to replay")
        return EXIT_OK
    print(
        f"replaying {len(log)} queries from {args.log} "
        f"({len(server.selection)} structures materialized)"
    )
    report = server.replay(log, workers=args.workers, batch_size=args.batch_size)
    return _report_serving(args, server, report, recorder)


def cmd_validate_cost(args: argparse.Namespace) -> int:
    """Differentially validate the cost model on the SQLite backend."""
    import json

    from repro.backends import validate_cost
    from repro.backends.validate import format_report

    schema, fact, model, selected, space, top_label = _serving_selection(
        args, integral_measures=True
    )
    report = validate_cost(
        fact, selected, cost_model=model, n_queries=args.queries, rng=args.rng
    )
    report["dims"] = args.dims
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"correlation report written to {args.output}")
    if report["mismatches"]:
        print(
            f"error: {report['mismatches']} engine-vs-SQLite answer "
            "mismatches",
            file=sys.stderr,
        )
        return 1
    return EXIT_OK


def cmd_experiments(args: argparse.Namespace) -> int:
    """Delegate to the experiment registry."""
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.names)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand.

    Input errors — missing or malformed documents, bad budgets, stale
    checkpoints — exit 2 with a one-line message; ``--traceback``
    restores the full stack for debugging.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "advise":
            return cmd_advise(args)
        if args.command == "mine":
            return cmd_mine(args)
        if args.command == "explain":
            return cmd_explain(args)
        if args.command == "resume":
            return cmd_resume(args)
        if args.command == "tpcd":
            return cmd_tpcd(args)
        if args.command == "partition":
            return cmd_partition(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "replay":
            return cmd_replay(args)
        if args.command == "validate-cost":
            return cmd_validate_cost(args)
        if args.command == "experiments":
            return cmd_experiments(args)
    except (OSError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError, the io.py document
        # validators, bad budgets (check_space), and CheckpointError
        if args.traceback:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    raise AssertionError(f"unhandled command {args.command!r}")
