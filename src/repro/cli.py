"""Command-line advisor: what should this cube precompute?

Usage::

    python -m repro advise --lattice cube.json --space 25e6 \\
        --algorithm inner --output selection.json
    python -m repro advise ... --deadline 3600 --checkpoint run.ckpt
    python -m repro resume --lattice cube.json --checkpoint run.ckpt
    python -m repro tpcd                     # the paper's Example 2.1 demo
    python -m repro experiments [names...]   # regenerate paper tables

``cube.json`` is the lattice document of :mod:`repro.io`: dimensions and
either exact per-view row counts or a raw row count for analytical
sizing.

Exit codes: 0 on success; 2 on bad input (malformed documents, missing
files, invalid budgets — one-line message on stderr, ``--traceback`` to
see the full stack); 3 when a run stopped early on a deadline, memory
budget, or signal — the best-so-far selection is still printed (and
written to ``--output``, flagged ``"interrupted": true``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.algorithms import (
    FIT_PAPER,
    FIT_STRICT,
    HRUGreedy,
    InnerLevelGreedy,
    RGreedy,
    TwoStep,
)
from repro.core.qvgraph import QueryViewGraph
from repro.io import (
    graph_from_dict,
    hierarchical_cube_from_dict,
    is_graph_document,
    is_hierarchical_document,
    lattice_from_dict,
    save_selection,
)

#: CLI exit codes (documented in docs/API.md).
EXIT_OK = 0
EXIT_ERROR = 2
EXIT_INTERRUPTED = 3

ALGORITHMS = {
    "1greedy": lambda fit, workers: RGreedy(1, fit=fit, workers=workers),
    "2greedy": lambda fit, workers: RGreedy(2, fit=fit, workers=workers),
    "3greedy": lambda fit, workers: RGreedy(3, fit=fit, workers=workers),
    "inner": lambda fit, workers: InnerLevelGreedy(fit=fit, workers=workers),
    "two-step": lambda fit, workers: TwoStep(0.5, fit=fit, workers=workers),
    "hru": lambda fit, workers: HRUGreedy(fit=fit, workers=workers),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index Selection for OLAP (ICDE 1997) — reproduction toolkit",
    )
    parser.add_argument(
        "--traceback",
        action="store_true",
        help="show full tracebacks for input errors instead of one-line "
        "messages",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    advise = sub.add_parser(
        "advise", help="select views and indexes for a cube under a space budget"
    )
    advise.add_argument(
        "--lattice", required=True, help="lattice JSON document (see repro.io)"
    )
    advise.add_argument(
        "--space", required=True, type=float, help="space budget in rows"
    )
    advise.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="inner",
        help="selection algorithm (default: inner-level greedy)",
    )
    advise.add_argument(
        "--fit",
        choices=(FIT_STRICT, FIT_PAPER),
        default=FIT_STRICT,
        help="space-fit policy (default: strict — never exceed the budget)",
    )
    advise.add_argument(
        "--no-seed-top",
        action="store_true",
        help="do not force-materialize the top view (default: seed it, "
        "since the base data cannot be computed from anything else)",
    )
    advise.add_argument(
        "--index-universe",
        choices=("fat", "all", "none"),
        default="fat",
        help="candidate indexes per view (default: fat only, per §4.2.2)",
    )
    advise.add_argument("--output", help="write the selection as JSON here")
    advise.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds; past it the run stops at the "
        "next stage boundary with the best-so-far selection (exit 3)",
    )
    advise.add_argument(
        "--memory-limit-mb",
        type=float,
        default=None,
        help="peak-RSS budget in MiB, checked at stage boundaries (exit 3)",
    )
    advise.add_argument(
        "--checkpoint",
        default=None,
        help="write a resumable checkpoint here after every committed "
        "stage (see 'repro resume')",
    )
    advise.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel stage evaluation: 0 = auto-size to this machine "
        "(serial on small problems), N >= 2 forces N workers; default "
        "follows REPRO_WORKERS (unset = serial).  The selection is "
        "bit-identical at any worker count",
    )

    resume = sub.add_parser(
        "resume",
        help="continue an interrupted advise run from its checkpoint",
    )
    resume.add_argument(
        "--lattice", required=True, help="the same cube document the "
        "interrupted run used"
    )
    resume.add_argument(
        "--checkpoint", required=True, help="checkpoint file written by "
        "advise --checkpoint"
    )
    resume.add_argument(
        "--index-universe", choices=("fat", "all", "none"), default="fat",
        help="must match the interrupted run (the checkpoint's graph "
        "fingerprint is verified)",
    )
    resume.add_argument("--output", help="write the selection as JSON here")
    resume.add_argument("--deadline", type=float, default=None)
    resume.add_argument("--memory-limit-mb", type=float, default=None)
    resume.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the worker count for the resumed run (0 = auto); "
        "checkpoints resume identically at any worker count",
    )

    explain = sub.add_parser(
        "explain", help="explain a saved selection: per-query plans and value"
    )
    explain.add_argument("--lattice", required=True, help="lattice JSON document")
    explain.add_argument(
        "--selection", required=True, help="selection JSON (from advise --output)"
    )
    explain.add_argument(
        "--index-universe", choices=("fat", "all", "none"), default="fat"
    )

    tpcd = sub.add_parser("tpcd", help="run the paper's Example 2.1 demo")
    tpcd.add_argument(
        "--space", type=float, default=None, help="override the 25M-row budget"
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("names", nargs="*", help="subset of experiments")
    return parser


def _load_graph(path: str, index_universe: str):
    """Load a cube document (flat or hierarchical) and compile its graph.

    Returns ``(graph, top_name, top_rows)``.
    """
    import json

    with open(path) as f:
        document = json.load(f)
    if is_graph_document(document):
        graph = graph_from_dict(document)
        # a raw graph has no distinguished top view; no automatic seed
        return graph, None, 0.0
    if is_hierarchical_document(document):
        from repro.core.hierarchy import hierarchical_lattice_graph

        cube = hierarchical_cube_from_dict(document)
        cap = document.get("max_fat_indexes_per_view")
        graph = hierarchical_lattice_graph(cube, max_fat_indexes_per_view=cap)
        return graph, cube.label(cube.top()), cube.size(cube.top())
    lattice = lattice_from_dict(document)
    graph = QueryViewGraph.from_cube(lattice, index_universe=index_universe)
    return graph, lattice.label(lattice.top), lattice.size(lattice.top)


def _report_result(result, output: Optional[str]) -> int:
    """Print a selection result (complete or partial) and persist it."""
    print(result.table())
    print()
    print(
        f"average query cost: {result.average_query_cost:g} rows "
        f"(no precomputation: {result.initial_tau / result.total_frequency:g})"
    )
    if output:
        save_selection(result, output)
        print(f"selection written to {output}")
    return EXIT_INTERRUPTED if result.interrupted else EXIT_OK


def _run_with_context(algorithm, graph, space, seed, args) -> int:
    """Run an algorithm under the runtime context the flags describe.

    Without runtime flags this is a plain call.  With them, the run gets
    budgets, stage checkpointing, and signal handlers; an early stop
    still reports (and saves) the best-so-far selection, exiting 3.
    """
    from repro.runtime import RunContext, RuntimeStop

    resume_from = getattr(args, "resume_from", None)
    wants_context = (
        args.deadline is not None
        or args.memory_limit_mb is not None
        or args.checkpoint is not None
        or resume_from is not None
    )
    if not wants_context:
        return _report_result(algorithm.run(graph, space, seed=seed), args.output)
    context = RunContext(
        deadline=args.deadline,
        memory_limit_mb=args.memory_limit_mb,
        checkpoint_path=args.checkpoint,
        resume_from=resume_from,
    )
    try:
        with context.handle_signals():
            result = algorithm.run(graph, space, seed=seed, context=context)
    except RuntimeStop as stop:
        print(f"run stopped early: {stop}", file=sys.stderr)
        if args.checkpoint:
            print(
                f"resume with: repro resume --lattice {args.lattice} "
                f"--checkpoint {args.checkpoint}",
                file=sys.stderr,
            )
        if stop.result is None:
            return EXIT_INTERRUPTED  # stopped before the first stage
        return _report_result(stop.result, args.output)
    return _report_result(result, args.output)


def cmd_advise(args: argparse.Namespace) -> int:
    """Run a selection algorithm on the cube document and report it."""
    graph, top_name, top_rows = _load_graph(args.lattice, args.index_universe)
    seed = () if (args.no_seed_top or top_name is None) else (top_name,)
    if seed and top_rows > args.space:
        print(
            f"error: the top view needs {top_rows:g} rows, "
            f"more than the {args.space:g}-row budget "
            "(pass --no-seed-top to skip it)",
            file=sys.stderr,
        )
        return EXIT_ERROR
    algorithm = ALGORITHMS[args.algorithm](args.fit, args.workers)
    return _run_with_context(algorithm, graph, args.space, seed, args)


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted advise run from its checkpoint."""
    from repro.runtime import load_checkpoint
    from repro.runtime.checkpoint import algorithm_from_config

    checkpoint = load_checkpoint(args.checkpoint)
    graph, __top, __rows = _load_graph(args.lattice, args.index_universe)
    algorithm = algorithm_from_config(checkpoint.algorithm)
    if args.workers is not None and hasattr(algorithm, "workers"):
        algorithm.workers = args.workers
    args.resume_from = checkpoint
    print(
        f"resuming {checkpoint.algorithm['class']} from stage "
        f"{checkpoint.stage_counter} "
        f"({len(checkpoint.selected)} structures selected, "
        f"{checkpoint.remaining_space:g} rows of budget left)"
    )
    return _run_with_context(
        algorithm, graph, checkpoint.space_budget, checkpoint.seed, args
    )


def cmd_explain(args: argparse.Namespace) -> int:
    """Explain a saved selection against its cube document."""
    import json

    from repro.analysis import explain

    graph, __, __rows = _load_graph(args.lattice, args.index_universe)
    with open(args.selection) as f:
        document = json.load(f)
    selected = document.get("selected")
    if not isinstance(selected, list):
        print("error: selection document has no 'selected' list", file=sys.stderr)
        return EXIT_ERROR
    explanation = explain(graph, selected)
    print(explanation.table())
    print()
    print(
        f"benefit {explanation.benefit:g}; coverage {explanation.coverage():.0%}; "
        f"{len(explanation.raw_fallback_queries)} queries still on raw data"
    )
    return 0


def cmd_tpcd(args: argparse.Namespace) -> int:
    """Print the Example 2.1 comparison table."""
    from repro.datasets.tpcd import TPCD_SPACE_BUDGET
    from repro.experiments.example21 import format_example21, run_example21

    space = args.space if args.space is not None else TPCD_SPACE_BUDGET
    print(format_example21(run_example21(space=space)))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Delegate to the experiment registry."""
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.names)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand.

    Input errors — missing or malformed documents, bad budgets, stale
    checkpoints — exit 2 with a one-line message; ``--traceback``
    restores the full stack for debugging.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "advise":
            return cmd_advise(args)
        if args.command == "explain":
            return cmd_explain(args)
        if args.command == "resume":
            return cmd_resume(args)
        if args.command == "tpcd":
            return cmd_tpcd(args)
        if args.command == "experiments":
            return cmd_experiments(args)
    except (OSError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError, the io.py document
        # validators, bad budgets (check_space), and CheckpointError
        if args.traceback:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    raise AssertionError(f"unhandled command {args.command!r}")
