"""Common machinery for selection algorithms.

All algorithms consume a :class:`~repro.core.qvgraph.QueryViewGraph` (or a
pre-compiled :class:`~repro.core.benefit.BenefitEngine`, which avoids paying
compilation repeatedly in parameter sweeps) and a space budget ``S``, and
produce a :class:`~repro.core.selection.SelectionResult`.

Two space-fit policies are supported, selected by the ``fit`` parameter:

``"paper"``
    The paper's semantics: keep picking while the space already used is
    below ``S``.  The final pick may overshoot; Theorem 5.1 bounds the
    overshoot by ``r − 1`` structures for r-greedy (unit spaces) and
    Theorem 5.2 by ``2·S`` total for inner-level greedy.

``"strict"``
    Practical semantics: only candidate sets that fit in the remaining
    budget are considered; the selection never exceeds ``S``.
"""

from __future__ import annotations

import abc
from typing import Union

from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.selection import SelectionResult

GraphLike = Union[QueryViewGraph, BenefitEngine]

FIT_PAPER = "paper"
FIT_STRICT = "strict"
_FITS = (FIT_PAPER, FIT_STRICT)

#: Tolerance used in floating-point space-fit comparisons.
SPACE_EPS = 1e-9


def as_engine(graph: GraphLike) -> BenefitEngine:
    """Return a freshly reset engine for the graph (or the engine itself)."""
    if isinstance(graph, BenefitEngine):
        graph.reset()
        return graph
    if isinstance(graph, QueryViewGraph):
        return BenefitEngine(graph)
    raise TypeError(
        f"expected QueryViewGraph or BenefitEngine, got {type(graph).__name__}"
    )


def resolve_lazy(lazy, engine: BenefitEngine) -> bool:
    """Resolve an algorithm's ``lazy`` parameter against the engine.

    ``None`` (or ``"auto"``) defers to the engine: the sparse backend
    prefers the lazy stage loops (maintained single-benefit cache), the
    dense backend keeps the eager full-scan loops.  Lazy and eager loops
    are cross-checked to produce identical selections.
    """
    if lazy is None or lazy == "auto":
        return bool(engine.prefers_lazy)
    return bool(lazy)


def check_fit(fit: str) -> str:
    if fit not in _FITS:
        raise ValueError(f"fit must be one of {_FITS}, got {fit!r}")
    return fit


def check_space(space: float) -> float:
    if space <= 0:
        raise ValueError(f"space budget must be positive, got {space}")
    return float(space)


def apply_seed(engine: BenefitEngine, seed) -> list:
    """Commit the seed structures (by name) and return their ids.

    The *seed* is the set of structures materialized unconditionally
    before the algorithm runs — the paper's Example 2.1 (following
    [HRU96]) always materializes the top view ``psc``, since the data
    cube's base table cannot be computed from anything else.  Seed space
    counts against the budget.
    """
    ids = [engine.structure_id(name) for name in seed]
    if ids:
        engine.commit(ids)
    return ids


class SelectionAlgorithm(abc.ABC):
    """Base class: a named algorithm mapping (graph, space) → selection."""

    #: Human-readable algorithm name; subclasses override.
    name: str = "selection"

    @abc.abstractmethod
    def run(self, graph: GraphLike, space: float, seed=()) -> SelectionResult:
        """Select structures within (about) ``space`` units of space.

        ``seed`` names structures committed up front (e.g. the top view);
        their space counts against the budget.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
