"""Common machinery for selection algorithms.

All algorithms consume a :class:`~repro.core.qvgraph.QueryViewGraph` (or a
pre-compiled :class:`~repro.core.benefit.BenefitEngine`, which avoids paying
compilation repeatedly in parameter sweeps) and a space budget ``S``, and
produce a :class:`~repro.core.selection.SelectionResult`.

Two space-fit policies are supported, selected by the ``fit`` parameter:

``"paper"``
    The paper's semantics: keep picking while the space already used is
    below ``S``.  The final pick may overshoot; Theorem 5.1 bounds the
    overshoot by ``r − 1`` structures for r-greedy (unit spaces) and
    Theorem 5.2 by ``2·S`` total for inner-level greedy.

``"strict"``
    Practical semantics: only candidate sets that fit in the remaining
    budget are considered; the selection never exceeds ``S``.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence, Union

from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.selection import SelectionResult, Stage, make_result
from repro.runtime.checkpoint import CheckpointError, StageRecord
from repro.runtime.context import SEED_SCOPE, RunContext, RuntimeStop

GraphLike = Union[QueryViewGraph, BenefitEngine]

FIT_PAPER = "paper"
FIT_STRICT = "strict"
_FITS = (FIT_PAPER, FIT_STRICT)

#: Tolerance used in floating-point space-fit comparisons.
SPACE_EPS = 1e-9


def as_engine(graph: GraphLike) -> BenefitEngine:
    """Return a freshly reset engine for the graph (or the engine itself)."""
    if isinstance(graph, BenefitEngine):
        graph.reset()
        return graph
    if isinstance(graph, QueryViewGraph):
        return BenefitEngine(graph)
    raise TypeError(
        f"expected QueryViewGraph or BenefitEngine, got {type(graph).__name__}"
    )


def resolve_lazy(lazy, engine: BenefitEngine) -> bool:
    """Resolve an algorithm's ``lazy`` parameter against the engine.

    ``None`` (or ``"auto"``) defers to the engine: the sparse backend
    prefers the lazy stage loops (maintained single-benefit cache), the
    dense backend keeps the eager full-scan loops.  Lazy and eager loops
    are cross-checked to produce identical selections.
    """
    if lazy is None or lazy == "auto":
        return bool(engine.prefers_lazy)
    return bool(lazy)


def check_fit(fit: str) -> str:
    if fit not in _FITS:
        raise ValueError(f"fit must be one of {_FITS}, got {fit!r}")
    return fit


def check_space(space: float) -> float:
    space = float(space)
    if not math.isfinite(space):
        raise ValueError(f"space budget must be finite, got {space}")
    if space <= 0:
        raise ValueError(f"space budget must be positive, got {space}")
    return space


def apply_seed(engine: BenefitEngine, seed) -> list:
    """Commit the seed structures (by name) and return their ids.

    The *seed* is the set of structures materialized unconditionally
    before the algorithm runs — the paper's Example 2.1 (following
    [HRU96]) always materializes the top view ``psc``, since the data
    cube's base table cannot be computed from anything else.  Seed space
    counts against the budget.
    """
    ids = [engine.structure_id(name) for name in seed]
    if ids:
        engine.commit(ids)
    return ids


class StageTracker:
    """Stage bookkeeping shared by the selection algorithms, bridging the
    optional :class:`~repro.runtime.context.RunContext`.

    Tracks the stages and pick order of one run, and — when a context is
    present — records every committed stage for checkpointing, enforces
    the context's budgets at each stage boundary, and replays recorded
    stages on resume (cheap commits; the expensive stage searches are
    skipped).  With ``context=None`` it is plain bookkeeping with zero
    overhead beyond list appends.
    """

    #: Relative tolerance when validating a replayed stage's benefit
    #: against the checkpoint record (guards corrupted checkpoints; the
    #: engine replay itself is exact).
    REPLAY_RTOL = 1e-9

    def __init__(
        self,
        algorithm: "SelectionAlgorithm",
        engine: BenefitEngine,
        space: float,
        context: Optional[RunContext] = None,
        scope: Optional[str] = None,
    ):
        self.algorithm = algorithm
        self.engine = engine
        self.space = space
        self.context = context
        self.scope = scope if scope is not None else type(algorithm).__name__
        self.stages: list = []
        self.picked: list = []
        self.evaluator = None
        # running space total, mirrored into each checkpoint so the
        # boundary need not re-sum the engine's selection every stage
        self._space_total = float(engine.space_used())
        if context is not None:
            context.bind(algorithm, engine, space)

    def set_evaluator(self, evaluator) -> None:
        """Attach the run's stage evaluator: commits get reported to it
        (so a parallel evaluator can track stale singles), and the run
        context learns about it (so stop paths drain the pool)."""
        self.evaluator = evaluator
        if self.context is not None:
            self.context.register_evaluator(evaluator)

    # ---------------------------------------------------------------- seed

    def apply_seed(self, seed: Sequence[str]) -> None:
        """Commit the seed structures and record the seed stage.

        On resume the checkpoint's seed record is consumed to keep the
        replay queue aligned; the stage itself is recomputed (the seed
        commit is deterministic, so the values are identical).
        """
        engine = self.engine
        names = tuple(seed)
        if self.context is not None:
            self.context.set_seed(names)
            self.context.replay_next(SEED_SCOPE)
        seed_ids = apply_seed(engine, names)
        if not seed_ids:
            return
        stage_names = tuple(engine.name_of(i) for i in seed_ids)
        stage = Stage(
            structures=stage_names,
            benefit=engine.absolute_benefit(seed_ids),
            space=engine.space_of(seed_ids),
            tau_after=engine.tau(),
        )
        self.picked.extend(stage_names)
        self.stages.append(stage)
        self._notify(stage, SEED_SCOPE)

    # -------------------------------------------------------------- commits

    def commit_stage(
        self,
        ids,
        stage_space: Optional[float] = None,
        stage_benefit: Optional[float] = None,
    ) -> Stage:
        """Commit a stage's structures; record, checkpoint, and enforce
        budgets at the boundary.

        ``stage_space``/``stage_benefit`` preserve the values the stage
        loop computed for the candidate (bit-for-bit) instead of the
        re-derived ones — some loops report the scan's cached benefit,
        which may differ from the commit's in the last float bit.
        """
        engine = self.engine
        ids = [int(i) for i in ids]
        benefit = self._hooked_commit(lambda: engine.commit(ids))
        names = tuple(engine.name_of(i) for i in ids)
        if stage_space is None:
            stage_space = engine.space_of(ids)
        stage = Stage(
            structures=names,
            benefit=benefit if stage_benefit is None else float(stage_benefit),
            space=float(stage_space),
            tau_after=engine.tau(),
        )
        self.picked.extend(names)
        self.stages.append(stage)
        self._notify(stage, self.scope)
        return stage

    def replay_stage(self) -> Optional[Stage]:
        """Replay the next checkpointed stage of this tracker's scope.

        Returns the reconstructed :class:`Stage` (already committed to
        the engine), or ``None`` when nothing is left to replay here —
        the caller then falls through to its normal stage search.
        """
        if self.context is None:
            return None
        record = self.context.replay_next(self.scope)
        if record is None:
            return None
        engine = self.engine
        benefit = self._hooked_commit(
            lambda: engine.replay_commit(record.structures)
        )
        tolerance = self.REPLAY_RTOL * max(1.0, abs(record.benefit))
        if abs(benefit - record.benefit) > tolerance:
            raise CheckpointError(
                f"replayed stage {list(record.structures)} yields benefit "
                f"{benefit!r}, but the checkpoint recorded {record.benefit!r}; "
                "the checkpoint does not belong to this instance"
            )
        # the recorded values are authoritative (JSON round-trips floats
        # exactly), so resumed stages match the golden run bit-for-bit
        stage = Stage(
            structures=tuple(record.structures),
            benefit=record.benefit,
            space=record.space,
            tau_after=engine.tau(),
        )
        self.picked.extend(record.structures)
        self.stages.append(stage)
        self._notify(stage, self.scope)
        return stage

    def adopt(self, result: SelectionResult) -> None:
        """Fold a sub-run's stages and picks into this tracker (TwoStep
        adopts its HRU step's output)."""
        self.stages.extend(result.stages)
        self.picked.extend(result.selected)
        self._space_total = float(result.space_used)

    # -------------------------------------------------------------- results

    def finish(
        self, interrupted: bool = False, stop_reason: Optional[str] = None
    ) -> SelectionResult:
        return make_result(
            self.algorithm.name,
            self.engine,
            self.stages,
            self.space,
            self.picked,
            interrupted=interrupted,
            stop_reason=stop_reason,
        )

    def interrupted(self, stop: RuntimeStop) -> RuntimeStop:
        """Attach this run's best-so-far result to a stop and return it.

        Outermost attachment wins: a composite algorithm catches the
        stop from its sub-run and re-attaches the merged result.
        """
        stop.result = self.finish(interrupted=True, stop_reason=stop.reason)
        return stop

    # ------------------------------------------------------------ internals

    def _hooked_commit(self, commit_fn):
        """Run a commit, reporting the pre-commit best-cost vector to the
        evaluator when it asked for it (serial evaluators never do)."""
        evaluator = self.evaluator
        if evaluator is None or not evaluator.wants_commit_hook:
            return commit_fn()
        old_best = self.engine._best.copy()
        benefit = commit_fn()
        evaluator.note_commit(self.engine, old_best)
        return benefit

    def _notify(self, stage: Stage, scope: str) -> None:
        if self.context is None:
            return
        self._space_total += stage.space
        self.context.record_stage(
            StageRecord(
                scope=scope,
                structures=tuple(stage.structures),
                benefit=stage.benefit,
                space=stage.space,
                tau_after=stage.tau_after,
            )
        )
        self.context.stage_boundary(self.engine, space_used=self._space_total)


class SelectionAlgorithm(abc.ABC):
    """Base class: a named algorithm mapping (graph, space) → selection."""

    #: Human-readable algorithm name; subclasses override.
    name: str = "selection"

    @abc.abstractmethod
    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        """Select structures within (about) ``space`` units of space.

        ``seed`` names structures committed up front (e.g. the top view);
        their space counts against the budget.  ``context`` is an
        optional :class:`~repro.runtime.context.RunContext` providing
        deadlines, memory budgets, stage checkpointing, and resume.
        """

    def config(self) -> dict:
        """Checkpointable constructor config; subclasses add ``params``."""
        return {"class": type(self).__name__, "params": {}}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
