"""PBS — the pick-by-size heuristic of [HRU96].

[HRU96] complements its greedy with a near-trivial heuristic: materialize
views in increasing order of size until the space runs out.  Under the
"size-restricted" condition (view sizes drop quickly down the lattice)
PBS matches the greedy's guarantee at almost no computational cost, which
made it the practical default in early ROLAP tools.

We include it as a baseline: on the paper's instances PBS does well on
views but — like every views-only strategy — cannot see the benefit that
lives in indexes, so the one-step algorithms beat it whenever indexes
matter.  ``include_indexes=True`` extends the same size-ordered rule to
index structures (a view's indexes follow it immediately, since they tie
in size), giving the cheapest possible one-step straw man.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_fit,
    check_space,
)
from repro.core.selection import SelectionResult


class PickBySmallest(SelectionAlgorithm):
    """Materialize structures smallest-first until the space runs out."""

    def __init__(self, fit: str = FIT_STRICT, include_indexes: bool = False):
        self.fit = check_fit(fit)
        self.include_indexes = bool(include_indexes)
        self.name = "PBS" + (" (with indexes)" if self.include_indexes else "")

    def config(self) -> dict:
        return {
            "class": "PickBySmallest",
            "params": {
                "fit": self.fit,
                "include_indexes": self.include_indexes,
            },
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        tracker = StageTracker(self, engine, space, context)
        try:
            tracker.apply_seed(seed)
            # replayed picks are committed up front; the size-ordered scan
            # below then skips them (is_selected) and continues exactly
            # where the interrupted run stopped
            while tracker.replay_stage() is not None:
                pass
            self._size_loop(engine, space, tracker)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        return tracker.finish()

    def _size_loop(self, engine, space, tracker) -> None:
        candidates = []
        for view_id in engine.view_ids():
            view_id = int(view_id)
            candidates.append((float(engine.spaces[view_id]), 0, view_id))
            if self.include_indexes:
                for rank, idx in enumerate(engine.index_ids_of(view_id), start=1):
                    idx = int(idx)
                    candidates.append((float(engine.spaces[idx]), rank, idx))
        # smallest first; a view precedes its indexes (rank 0 < 1..), and
        # ties break on id for determinism
        candidates.sort(key=lambda entry: (entry[0], entry[1], entry[2]))

        strict = self.fit == FIT_STRICT
        for s_space, __rank, sid in candidates:
            if engine.is_selected(sid):
                continue
            if engine.space_used() >= space - SPACE_EPS:
                break
            if strict and engine.space_used() + s_space > space + SPACE_EPS:
                continue
            if not engine.is_view[sid] and not engine.is_selected(
                int(engine.view_id_of[sid])
            ):
                continue  # size order skipped the view (didn't fit)
            tracker.commit_stage([sid], stage_space=s_space)
