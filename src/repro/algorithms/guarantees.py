"""Performance-guarantee formulas (Theorems 5.1 and 5.2, Figure 3).

The r-greedy algorithm is guaranteed at least ``1 − e^{−(r−1)/r}`` of the
optimal benefit achievable in the space it used (unit-space structures):

* r = 1 → 0       (1-greedy can be arbitrarily bad)
* r = 2 → 0.393
* r = 3 → 0.487
* r = 4 → 0.528   (the "knee" of Figure 3)
* r → ∞ → 1 − 1/e ≈ 0.632

The inner-level greedy algorithm is guaranteed ``1 − e^{−0.63} ≈ 0.467``
using at most twice the given space — between 2-greedy and 3-greedy, at
roughly 2-greedy's running time.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

#: The [HRU96] greedy constant: the inner greedy under a space constraint
#: achieves at least a 0.63 fraction, which feeds Theorem 5.2.
HRU_CONSTANT = 0.63


def r_greedy_guarantee(r: int) -> float:
    """Worst-case benefit fraction of r-greedy vs optimal (Theorem 5.1).

    ``1 − e^{−(r−1)/r}``; tight — the paper exhibits matching instances.

    >>> r_greedy_guarantee(1)
    0.0
    >>> round(r_greedy_guarantee(2), 2)
    0.39
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    return 1.0 - math.exp(-(r - 1) / r)


def r_greedy_limit() -> float:
    """The r → ∞ limit of the r-greedy guarantee: ``1 − 1/e``."""
    return 1.0 - math.exp(-1.0)


def inner_level_guarantee() -> float:
    """Worst-case benefit fraction of inner-level greedy (Theorem 5.2).

    ``1 − e^{−0.63} ≈ 0.467`` — between the 2-greedy and 3-greedy bounds.
    """
    return 1.0 - math.exp(-HRU_CONSTANT)


def r_greedy_space_bound(space: float, r: int) -> float:
    """Maximum space used by r-greedy with unit structures: ``S + r − 1``."""
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    return space + r - 1


def inner_level_space_bound(space: float) -> float:
    """Maximum space used by inner-level greedy: ``2·S`` (Theorem 5.2)."""
    return 2.0 * space


def guarantee_curve(r_values: Iterable[int]) -> List[Tuple[int, float]]:
    """The Figure 3 series: ``(r, guarantee)`` pairs.

    >>> dict(guarantee_curve([1, 2]))[1]
    0.0
    """
    return [(r, r_greedy_guarantee(r)) for r in r_values]


def knee_of_curve(r_values: Iterable[int], threshold: float = 0.025) -> int:
    """Smallest r after which the guarantee increment drops below
    ``threshold`` — the paper reads the knee off Figure 3 at r = 4."""
    r_values = sorted(set(r_values))
    if len(r_values) < 2:
        raise ValueError("need at least two r values")
    previous = r_greedy_guarantee(r_values[0])
    for r in r_values[1:]:
        current = r_greedy_guarantee(r)
        if current - previous < threshold:
            return r - 1
        previous = current
    return r_values[-1]
