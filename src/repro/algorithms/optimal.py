"""Exact optimal selection, for the Section 6 comparisons.

The selection problem is NP-complete (reduction from Set-Cover), so exact
solutions are only for small instances — exactly how the paper uses them:
to measure how close the greedy family lands on cubes of low dimension.

Two solvers are provided:

* :class:`BranchAndBoundOptimal` — depth-first include/exclude search over
  the structures with two admissible pruning bounds (a fractional-knapsack
  bound over per-structure standalone benefits, and a take-everything
  suffix bound).  Exact, raises :class:`SearchBudgetExceeded` if the node
  budget runs out.
* :func:`exhaustive_optimal` — brute force over all admissible subsets;
  only for tiny graphs, used to cross-check the branch and bound in tests.

Both enforce the structural constraint that an index can only be selected
together with (or after) its view, and the strict space constraint
``S(M) <= S``.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

import numpy as np

from repro.algorithms.base import (
    SPACE_EPS,
    GraphLike,
    SelectionAlgorithm,
    apply_seed,
    as_engine,
    check_space,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult, make_result


class SearchBudgetExceeded(RuntimeError):
    """Raised when branch and bound exceeds its node budget.

    The instance is too large for exact search — shrink it or raise
    ``node_limit``.
    """


class BranchAndBoundOptimal(SelectionAlgorithm):
    """Exact optimal selection by branch and bound.

    Parameters
    ----------
    node_limit:
        Maximum number of search nodes to expand before giving up with
        :class:`SearchBudgetExceeded`.  The default handles cube graphs of
        dimension 3 (and unit-space instances like Figure 2) comfortably.
    """

    name = "optimal"

    def __init__(self, node_limit: int = 5_000_000):
        if node_limit < 1:
            raise ValueError("node_limit must be positive")
        self.node_limit = int(node_limit)

    def run(self, graph: GraphLike, space: float, seed=()) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        seed_ids = apply_seed(engine, seed)
        seed_space = engine.space_of(seed_ids)
        if seed_space > space + SPACE_EPS:
            raise ValueError(
                f"seed occupies {seed_space} > budget {space}"
            )
        root_vec = engine.best_costs  # defaults with the seed applied
        order = [sid for sid in self._structure_order(engine)
                 if sid not in set(seed_ids)]
        n = len(order)

        # standalone benefit upper bounds vs the root state (valid for any
        # deeper state: per-query best costs only shrink).
        freq = engine.frequencies
        standalone = np.array(
            [
                float(freq @ (root_vec - engine.minimum_with(root_vec, sid)))
                for sid in order
            ]
        )
        spaces = np.array([float(engine.spaces[sid]) for sid in order])

        # suffix take-everything bound: min cost over structures at
        # positions >= t (shape (n+1, Q)); row n is all-inf.
        suffix_min = np.full((n + 1, engine.n_queries), np.inf)
        for t in range(n - 1, -1, -1):
            suffix_min[t] = engine.minimum_with(suffix_min[t + 1], order[t])

        # density-sorted ranks for the fractional knapsack bound
        density_rank = sorted(
            range(n),
            key=lambda t: -(standalone[t] / spaces[t] if spaces[t] else 0.0),
        )

        best_benefit = -1.0
        best_set: Tuple[int, ...] = ()
        nodes = 0

        def knapsack_bound(t: int, space_left: float) -> float:
            bound = 0.0
            remaining = space_left
            for rank in density_rank:
                if rank < t or remaining <= 0:
                    continue
                take = min(1.0, remaining / spaces[rank]) if spaces[rank] else 1.0
                bound += take * standalone[rank]
                remaining -= take * spaces[rank]
                if remaining <= 0:
                    break
            return bound

        def dfs(t: int, chosen: list, best_vec: np.ndarray, benefit: float,
                space_left: float) -> None:
            nonlocal best_benefit, best_set, nodes
            nodes += 1
            if nodes > self.node_limit:
                raise SearchBudgetExceeded(
                    f"branch and bound exceeded {self.node_limit} nodes"
                )
            if benefit > best_benefit:
                best_benefit = benefit
                best_set = tuple(chosen)
            if t >= n:
                return
            # bounds
            take_all = float(freq @ (best_vec - np.minimum(best_vec, suffix_min[t])))
            if benefit + take_all <= best_benefit + 1e-12:
                return
            if benefit + knapsack_bound(t, space_left) <= best_benefit + 1e-12:
                return

            sid = order[t]
            s_space = spaces[t]
            is_view = bool(engine.is_view[sid])
            owner = int(engine.view_id_of[sid])
            owner_chosen = is_view or owner in chosen_set or owner in seed_set

            # branch 1: include (if it fits and is admissible)
            if owner_chosen and s_space <= space_left + SPACE_EPS:
                new_vec = engine.minimum_with(best_vec, sid)
                gain = float(freq @ (best_vec - new_vec))
                # including a zero-gain index is pointless; a zero-gain view
                # may still unlock indexes, so only prune indexes this way.
                if gain > 0.0 or is_view:
                    chosen.append(sid)
                    chosen_set.add(sid)
                    dfs(t + 1, chosen, new_vec, benefit + gain,
                        space_left - s_space)
                    chosen_set.discard(sid)
                    chosen.pop()

            # branch 2: exclude
            dfs(t + 1, chosen, best_vec, benefit, space_left)

        chosen_set: set = set()
        seed_set = set(seed_ids)
        dfs(0, [], root_vec.copy(), 0.0, space - seed_space)

        engine.reset()
        # commit views before their indexes (order[] groups views first
        # within each view group, and best_set preserves order[] order).
        engine.commit(list(seed_ids) + list(best_set))
        picked = [engine.name_of(sid) for sid in seed_ids] + [
            engine.name_of(sid) for sid in best_set
        ]
        return make_result(self.name, engine, (), space, picked)

    @staticmethod
    def _structure_order(engine: BenefitEngine) -> List[int]:
        """Structures grouped per view (view first, then its indexes),
        groups ordered by total standalone-benefit density (descending) so
        good solutions are found early."""
        defaults = engine.defaults
        freq = engine.frequencies

        def standalone(sid: int) -> float:
            return float(
                freq @ (defaults - engine.minimum_with(defaults, sid))
            )

        groups = []
        for view_id in engine.view_ids():
            view_id = int(view_id)
            members = [view_id] + [int(i) for i in engine.index_ids_of(view_id)]
            members_sorted = [view_id] + sorted(
                members[1:], key=lambda sid: -standalone(sid)
            )
            total_benefit = sum(standalone(sid) for sid in members)
            total_space = sum(float(engine.spaces[sid]) for sid in members)
            density = total_benefit / total_space if total_space else 0.0
            groups.append((density, members_sorted))
        groups.sort(key=lambda pair: -pair[0])
        return [sid for __, members in groups for sid in members]


def exhaustive_optimal(
    graph: GraphLike,
    space: float,
    max_structures: int = 22,
    seed=(),
) -> SelectionResult:
    """Brute-force optimal selection (for testing the branch and bound).

    Enumerates every subset of structures, filters admissible ones that
    fit in ``space``, and returns the best.  Refuses graphs with more than
    ``max_structures`` structures.
    """
    space = check_space(space)
    engine = as_engine(graph)
    n = engine.n_structures
    if n > max_structures:
        raise ValueError(
            f"exhaustive search limited to {max_structures} structures, got {n}"
        )
    seed_ids = apply_seed(engine, seed)
    seed_space = engine.space_of(seed_ids)
    free_ids = [sid for sid in range(n) if sid not in set(seed_ids)]
    best_benefit = -1.0
    best_subset: Tuple[int, ...] = ()
    for size in range(0, len(free_ids) + 1):
        for subset in combinations(free_ids, size):
            if seed_space + engine.space_of(subset) > space + SPACE_EPS:
                continue
            if not engine.is_admissible(subset):
                continue
            benefit = engine.benefit_of(subset)
            if benefit > best_benefit:
                best_benefit = benefit
                best_subset = subset
    engine.reset()
    engine.commit(list(seed_ids) + list(best_subset))
    picked = [engine.name_of(sid) for sid in seed_ids] + [
        engine.name_of(sid) for sid in best_subset
    ]
    return make_result("optimal (exhaustive)", engine, (), space, picked)
