"""The plain greedy view-selection algorithm of [HRU96] (no indexes).

This is the algorithm the paper builds on: pick, one at a time, the view
with the maximum benefit per unit space with respect to the current
selection, until the space budget is exhausted.  Indexes are ignored
entirely — index edges in the graph play no role.

It is used on its own as a baseline, and as the first step of the
:class:`~repro.algorithms.two_step.TwoStep` strategy the paper argues
against.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    SelectionAlgorithm,
    apply_seed,
    as_engine,
    check_fit,
    check_space,
    resolve_lazy,
)
from repro.core.selection import SelectionResult, Stage, make_result


class HRUGreedy(SelectionAlgorithm):
    """Greedy selection over views only ([HRU96]).

    ``lazy=None`` (default) follows the engine: the sparse backend uses
    the incrementally maintained single-benefit cache per stage, the dense
    backend the eager full scan.  Both select the same views.
    """

    name = "HRU greedy (views only)"

    def __init__(self, fit: str = FIT_STRICT, lazy: Optional[bool] = None):
        self.fit = check_fit(fit)
        self.lazy = lazy

    def run(self, graph: GraphLike, space: float, seed=()) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        stages = []
        picked_order = []
        strict = self.fit == FIT_STRICT
        seed_ids = apply_seed(engine, seed)
        if seed_ids:
            names = tuple(engine.name_of(i) for i in seed_ids)
            picked_order.extend(names)
            stages.append(
                Stage(
                    structures=names,
                    benefit=engine.absolute_benefit(seed_ids),
                    space=engine.space_of(seed_ids),
                    tau_after=engine.tau(),
                )
            )

        view_ids = engine.view_ids()
        while engine.space_used() < space - SPACE_EPS:
            space_left = space - engine.space_used()
            if lazy:
                # maintained-cache pass: same candidate order, filters and
                # tie-break as the eager loop below
                pick = engine.lazy_best_single(
                    view_ids, space_left if strict else None
                )
                if pick is None:
                    break
                best_id, best_benefit, best_space, _ratio = pick
            else:
                benefits = engine.single_benefits(view_ids, lazy=False)
                best_id = None
                best_benefit = 0.0
                best_space = 0.0
                best_ratio = 0.0
                for pos, view_id in enumerate(view_ids):
                    view_id = int(view_id)
                    if engine.is_selected(view_id):
                        continue
                    view_space = float(engine.spaces[view_id])
                    if strict and view_space > space_left + SPACE_EPS:
                        continue
                    benefit = float(benefits[pos])
                    if benefit <= 0.0:
                        continue
                    ratio = benefit / view_space
                    if best_id is None or ratio > best_ratio * (1 + 1e-12):
                        best_id = view_id
                        best_benefit = benefit
                        best_space = view_space
                        best_ratio = ratio
                if best_id is None:
                    break
            engine.commit([best_id])
            name = engine.name_of(best_id)
            picked_order.append(name)
            stages.append(
                Stage(
                    structures=(name,),
                    benefit=best_benefit,
                    space=best_space,
                    tau_after=engine.tau(),
                )
            )
        return make_result(self.name, engine, stages, space, picked_order)
