"""The plain greedy view-selection algorithm of [HRU96] (no indexes).

This is the algorithm the paper builds on: pick, one at a time, the view
with the maximum benefit per unit space with respect to the current
selection, until the space budget is exhausted.  Indexes are ignored
entirely — index edges in the graph play no role.

It is used on its own as a baseline, and as the first step of the
:class:`~repro.algorithms.two_step.TwoStep` strategy the paper argues
against.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_fit,
    check_space,
    resolve_lazy,
)
from repro.core.selection import SelectionResult
from repro.parallel import make_evaluator


class HRUGreedy(SelectionAlgorithm):
    """Greedy selection over views only ([HRU96]).

    ``lazy=None`` (default) follows the engine: the sparse backend uses
    the incrementally maintained single-benefit cache per stage, the dense
    backend the eager full scan.  Both select the same views.  ``workers``
    parallelises the per-stage scan (see :mod:`repro.parallel`) without
    changing the selection.
    """

    name = "HRU greedy (views only)"

    def __init__(
        self,
        fit: str = FIT_STRICT,
        lazy: Optional[bool] = None,
        workers: Optional[int] = None,
    ):
        self.fit = check_fit(fit)
        self.lazy = lazy
        self.workers = workers

    def config(self) -> dict:
        return {
            "class": "HRUGreedy",
            "params": {"fit": self.fit, "lazy": self.lazy, "workers": self.workers},
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
        evaluator=None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        strict = self.fit == FIT_STRICT
        tracker = StageTracker(self, engine, space, context)
        # TwoStep passes its own evaluator so both steps share one pool;
        # a shared evaluator is also not ours to close
        owns_evaluator = evaluator is None
        if owns_evaluator:
            evaluator = make_evaluator(engine, self.workers)
        tracker.set_evaluator(evaluator)
        try:
            tracker.apply_seed(seed)
            self._stage_loop(engine, space, strict, lazy, tracker, evaluator)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        finally:
            if owns_evaluator:
                evaluator.close()
        return tracker.finish()

    def _stage_loop(self, engine, space, strict, lazy, tracker, evaluator) -> None:
        view_ids = engine.view_ids()
        while engine.space_used() < space - SPACE_EPS:
            if tracker.replay_stage() is not None:
                continue
            space_left = space - engine.space_used()
            # one best-single pass over the views: same candidate order,
            # filters, and tie-break whether the evaluator runs it on the
            # maintained cache, an eager scan, or sharded across workers
            pick = evaluator.single_stage(
                engine, view_ids, space_left if strict else None, lazy
            )
            if pick is None:
                break
            best_id, best_benefit, best_space, _ratio = pick
            tracker.commit_stage(
                [best_id], stage_space=best_space, stage_benefit=best_benefit
            )
