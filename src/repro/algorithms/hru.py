"""The plain greedy view-selection algorithm of [HRU96] (no indexes).

This is the algorithm the paper builds on: pick, one at a time, the view
with the maximum benefit per unit space with respect to the current
selection, until the space budget is exhausted.  Indexes are ignored
entirely — index edges in the graph play no role.

It is used on its own as a baseline, and as the first step of the
:class:`~repro.algorithms.two_step.TwoStep` strategy the paper argues
against.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_fit,
    check_space,
    resolve_lazy,
)
from repro.core.selection import SelectionResult


class HRUGreedy(SelectionAlgorithm):
    """Greedy selection over views only ([HRU96]).

    ``lazy=None`` (default) follows the engine: the sparse backend uses
    the incrementally maintained single-benefit cache per stage, the dense
    backend the eager full scan.  Both select the same views.
    """

    name = "HRU greedy (views only)"

    def __init__(self, fit: str = FIT_STRICT, lazy: Optional[bool] = None):
        self.fit = check_fit(fit)
        self.lazy = lazy

    def config(self) -> dict:
        return {
            "class": "HRUGreedy",
            "params": {"fit": self.fit, "lazy": self.lazy},
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        strict = self.fit == FIT_STRICT
        tracker = StageTracker(self, engine, space, context)
        try:
            tracker.apply_seed(seed)
            self._stage_loop(engine, space, strict, lazy, tracker)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        return tracker.finish()

    def _stage_loop(self, engine, space, strict, lazy, tracker) -> None:
        view_ids = engine.view_ids()
        while engine.space_used() < space - SPACE_EPS:
            if tracker.replay_stage() is not None:
                continue
            space_left = space - engine.space_used()
            if lazy:
                # maintained-cache pass: same candidate order, filters and
                # tie-break as the eager loop below
                pick = engine.lazy_best_single(
                    view_ids, space_left if strict else None
                )
                if pick is None:
                    break
                best_id, best_benefit, best_space, _ratio = pick
            else:
                benefits = engine.single_benefits(view_ids, lazy=False)
                best_id = None
                best_benefit = 0.0
                best_space = 0.0
                best_ratio = 0.0
                for pos, view_id in enumerate(view_ids):
                    view_id = int(view_id)
                    if engine.is_selected(view_id):
                        continue
                    view_space = float(engine.spaces[view_id])
                    if strict and view_space > space_left + SPACE_EPS:
                        continue
                    benefit = float(benefits[pos])
                    if benefit <= 0.0:
                        continue
                    ratio = benefit / view_space
                    if best_id is None or ratio > best_ratio * (1 + 1e-12):
                        best_id = view_id
                        best_benefit = benefit
                        best_space = view_space
                        best_ratio = ratio
                if best_id is None:
                    break
            tracker.commit_stage(
                [best_id], stage_space=best_space, stage_benefit=best_benefit
            )
