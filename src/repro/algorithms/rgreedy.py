"""The r-greedy algorithm (Algorithm 5.1 of the paper).

The algorithm runs in stages.  At each stage it considers every candidate
set ``C`` of at most ``r`` structures of one of two shapes:

* an unselected view together with up to ``r − 1`` of its indexes, or
* a single index whose view was selected at an earlier stage,

and commits the set with the maximum benefit per unit space with respect to
the current selection.  With ``r = 1`` this degenerates to picking one
structure at a time (and therefore can never see the value locked inside a
view's indexes — the failure mode motivating the paper).

Performance guarantee (Theorem 5.1, unit-space structures): the selection
uses at most ``S + r − 1`` units and achieves at least
``1 − e^−(r−1)/r`` of the optimal benefit attainable in the space it used.

The running time is ``O(k · m^r)`` for ``m`` structures and ``k`` stages.
Two layers of pruning keep moderate-to-large dimensions practical without
changing the result:

* the inner subset search prunes with a submodularity-based upper bound
  (sound: individual index gains computed against the stage's base state
  dominate any later marginal gain);
* in lazy mode (``lazy=True``, or the engine's default for the sparse
  backend) per-structure benefits come from the engine's incrementally
  maintained cache instead of a full re-scan, and a whole view's index
  subtree is skipped when the cached-singles upper bound on any bundle
  ratio cannot displace the stage incumbent.  Candidates are still offered
  in the exact eager order with the same tie-break rule, so lazy and eager
  runs select identical structures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_fit,
    check_space,
    resolve_lazy,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult
from repro.parallel import ChainSink, make_evaluator

#: The stage incumbent chain (deterministic tie-breaking: first candidate
#: found at a strictly better ratio wins).  The scan methods below take
#: any sink with the same ``offer``/``prune_ratio``/``can_displace``
#: surface — parallel workers substitute a
#: :class:`~repro.parallel.sinks.RecorderSink`.
_Candidate = ChainSink


class RGreedy(SelectionAlgorithm):
    """r-greedy selection of views and indexes.

    Parameters
    ----------
    r:
        Maximum number of structures committed per stage (``r >= 1``).
    fit:
        ``"paper"`` or ``"strict"`` space semantics (see
        :mod:`repro.algorithms.base`).
    lazy:
        ``None`` (default) follows the engine — lazy on the sparse
        backend, eager on the dense one.  ``True``/``False`` force the
        maintained-cache or full-rescan stage loop.  Both produce the
        same selection.
    workers:
        Stage-evaluation parallelism (see :mod:`repro.parallel`):
        ``None`` defers to ``REPRO_WORKERS`` (unset = serial), ``1`` is
        serial, ``0`` auto-sizes to the machine (falling back to serial
        on small problems), ``N >= 2`` forces a pool.  Parallel runs
        select bit-identical structures.
    """

    def __init__(
        self,
        r: int = 1,
        fit: str = FIT_STRICT,
        lazy: Optional[bool] = None,
        workers: Optional[int] = None,
    ):
        if r < 1:
            raise ValueError(f"r must be >= 1, got {r}")
        self.r = int(r)
        self.fit = check_fit(fit)
        self.lazy = lazy
        self.workers = workers
        self.name = f"{self.r}-greedy"

    def config(self) -> dict:
        return {
            "class": "RGreedy",
            "params": {
                "r": self.r,
                "fit": self.fit,
                "lazy": self.lazy,
                "workers": self.workers,
            },
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        tracker = StageTracker(self, engine, space, context)
        evaluator = make_evaluator(engine, self.workers)
        tracker.set_evaluator(evaluator)
        try:
            tracker.apply_seed(seed)
            while engine.space_used() < space - SPACE_EPS:
                if tracker.replay_stage() is not None:
                    continue
                candidate = evaluator.rgreedy_stage(self, engine, space, lazy)
                if candidate.ids is None:
                    break
                tracker.commit_stage(candidate.ids, stage_space=candidate.space)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        finally:
            evaluator.close()
        return tracker.finish()

    # ------------------------------------------------------------ internals

    def _best_stage(
        self, engine: BenefitEngine, space: float, lazy: bool
    ) -> _Candidate:
        best = _Candidate()
        space_left = space - engine.space_used()
        strict = self.fit == FIT_STRICT

        if lazy and self.r < 2:
            # pure single-structure stage: one pass over the maintained
            # cache over the static view-major candidate order; the
            # selected/admissible filters inside lazy_best_single leave
            # exactly the eager scan's offers, in the eager scan's order
            pick = engine.lazy_best_single(
                engine.stage_candidates(),
                space_left if strict else None,
            )
            if pick is not None:
                sid, benefit, sid_space, _ratio = pick
                best.offer((sid,), benefit, sid_space)
            return best

        # one pass gives every structure's standalone benefit (used
        # directly for bare views and for phase-2 single indexes); in lazy
        # mode this reads the incrementally maintained cache instead
        singles = engine.single_benefits(lazy=lazy)
        self._scan_views(
            engine, engine.view_ids(), best, singles, space_left, strict, lazy
        )
        return best

    def _scan_views(
        self,
        engine,
        view_ids,
        best,
        singles: np.ndarray,
        space_left: float,
        strict: bool,
        lazy: bool,
    ) -> None:
        """Offer every candidate bundle rooted at ``view_ids`` to ``best``.

        The one scan implementation serial and parallel runs share:
        ``engine`` is either the real :class:`BenefitEngine` or a
        worker's shared-memory view, ``best`` either the serial incumbent
        chain or a worker's recorder.  Offers happen in the canonical
        view-major order restricted to ``view_ids``.
        """

        def fits(candidate_space: float) -> bool:
            return not strict or candidate_space <= space_left + SPACE_EPS

        best_vec = engine.best_costs
        freq = engine.frequencies
        selected_mask = engine.selected_mask

        for view_id in view_ids:
            view_id = int(view_id)
            if selected_mask[view_id]:
                # phase 2 shape: single unselected indexes of selected views
                for idx in engine.index_ids_of(view_id):
                    idx = int(idx)
                    if selected_mask[idx]:
                        continue
                    idx_space = float(engine.spaces[idx])
                    if not fits(idx_space):
                        continue
                    best.offer((idx,), float(singles[idx]), idx_space)
                continue

            view_space = float(engine.spaces[view_id])
            if strict and view_space > space_left + SPACE_EPS:
                continue  # nothing containing this view can fit
            view_benefit = float(singles[view_id])
            best.offer((int(view_id),), view_benefit, view_space)
            if self.r < 2:
                continue
            idx_ids = engine.index_ids_of(view_id)
            unselected_idx = idx_ids[~selected_mask[idx_ids]] if idx_ids.size else idx_ids
            if unselected_idx.size == 0:
                continue
            if lazy and self._subtree_pruned(
                engine, best, singles, view_benefit, view_space,
                unselected_idx, space_left, strict,
            ):
                continue
            base = engine.minimum_with(best_vec, view_id)

            self._search_index_subsets(
                engine,
                best,
                int(view_id),
                view_space,
                view_benefit,
                base,
                freq,
                space_left,
                strict,
                unselected_idx,
                singles,
            )

    def _subtree_pruned(
        self,
        engine,
        best,
        singles: np.ndarray,
        view_benefit: float,
        view_space: float,
        unselected_idx: np.ndarray,
        space_left: float,
        strict: bool,
    ) -> bool:
        """True when no ``{view} ∪ T`` bundle can displace the incumbent.

        Upper bound from cached singles: a ``k``-index bundle's benefit is
        at most ``singles[view] + (top k index singles)`` (subadditivity)
        and its space at least ``view_space + k · min index space``, so if
        every such ratio fails the incumbent's ``(1 + 1e-12)`` displacement
        threshold the whole subtree is a no-op.  Exact — a skipped subtree
        could never have changed the stage outcome.
        """
        idx_singles = singles[unselected_idx]
        positive = idx_singles > 0.0
        if not positive.any():
            # every index gain against the view baseline would be <= 0,
            # so the eager subset search would find nothing either
            return True
        if best.ids is None:
            return False
        idx_singles = np.sort(idx_singles[positive])[::-1]
        min_space = float(engine.spaces[unselected_idx[positive]].min())
        threshold = best.prune_ratio
        max_extra = min(self.r - 1, idx_singles.size)
        cum_benefit = view_benefit
        for k in range(1, max_extra + 1):
            cum_benefit += float(idx_singles[k - 1])
            bundle_space = view_space + k * min_space
            if strict and bundle_space > space_left + SPACE_EPS:
                break  # larger bundles only need more space
            if cum_benefit > threshold * bundle_space:
                return False
        return True

    def _search_index_subsets(
        self,
        engine,
        best,
        view_id: int,
        view_space: float,
        view_benefit: float,
        base: np.ndarray,
        freq: np.ndarray,
        space_left: float,
        strict: bool,
        unselected_idx: np.ndarray,
        singles: np.ndarray,
    ) -> None:
        """Consider {view} ∪ T for index subsets T, |T| ≤ r − 1.

        Enumerates subsets depth-first, carrying the partial per-query
        minimum.  Branches are pruned with an optimistic bound: the gain of
        any deeper subset is at most the sum of the largest individual
        index gains (computed once against ``base``), because per-query
        minima only shrink as indexes are added.
        """
        # an index with zero standalone benefit has zero gain against the
        # (even lower) view baseline — drop it before touching its row
        candidates = unselected_idx[singles[unselected_idx] > 0.0]
        if candidates.size == 0:
            return
        # individual gains over the view-scan baseline; branch on the
        # kernel actually in use (not the backend) so a dense engine
        # routed through CSR for worker parity takes the CSR pass too
        if engine.uses_csr_kernels:
            gain_values = engine.gains_for(candidates, base)
            gains = [
                (float(g), int(idx))
                for g, idx in zip(gain_values, candidates.tolist())
                if g > 0.0
            ]
        else:
            gains = []
            for idx in candidates.tolist():
                reduced = engine.minimum_with(base, idx)
                gain = float(freq @ (base - reduced))
                if gain > 0.0:
                    gains.append((gain, idx))
        if not gains:
            return
        gains.sort(key=lambda pair: -pair[0])
        idx_order = [idx for __, idx in gains]
        gain_by_rank = [g for g, __ in gains]
        idx_spaces = engine.spaces[np.array(idx_order, dtype=np.int64)]
        min_idx_space = float(idx_spaces.min())
        max_extra = self.r - 1

        # suffix_top[t][k] = sum of the k largest gains among ranks >= t;
        # since gains are sorted descending this is just the next-k prefix.
        def suffix_top(t: int, k: int) -> float:
            return sum(gain_by_rank[t : t + k])

        def prune(t: int, chosen: int, cur_benefit: float, cur_space: float) -> bool:
            """True if no extension from rank t can beat the best ratio."""
            if best.ids is None:
                return False
            remaining = min(max_extra - chosen, len(idx_order) - t)
            for extra in range(0, remaining + 1):
                ub_benefit = cur_benefit + suffix_top(t, extra)
                ub_space = cur_space + extra * min_idx_space
                if extra == 0 and chosen == 0:
                    continue  # the bare view was already offered
                if best.can_displace(ub_benefit, ub_space):
                    return False
            return True

        def search(t: int, chosen_ids: list, cur_min: np.ndarray, cur_benefit: float,
                   cur_space: float) -> None:
            if len(chosen_ids) >= max_extra:
                return
            for rank in range(t, len(idx_order)):
                if prune(rank, len(chosen_ids), cur_benefit, cur_space):
                    return
                idx = idx_order[rank]
                idx_space = float(engine.spaces[idx])
                new_space = cur_space + idx_space
                if strict and new_space > space_left + SPACE_EPS:
                    continue
                new_min = engine.minimum_with(cur_min, idx)
                new_benefit = view_benefit + float(freq @ (base - new_min))
                chosen_ids.append(idx)
                best.offer((view_id, *chosen_ids), new_benefit, new_space)
                search(rank + 1, chosen_ids, new_min, new_benefit, new_space)
                chosen_ids.pop()

        search(0, [], base, view_benefit, view_space)
