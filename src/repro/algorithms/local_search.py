"""Local-search refinement of a greedy selection (extension).

The greedy family is provably near-optimal but can leave benefit on the
table when an early pick crowds out a better bundle (Example 5.1's
1-greedy is the extreme case).  :class:`LocalSearchRefiner` takes any
finished selection and hill-climbs with two move kinds until a local
optimum:

* **add** — insert an unselected structure that fits the remaining space
  and has positive marginal benefit;
* **swap** — remove one selected structure (an index, or a view together
  with its selected indexes — removing a view without its indexes would
  be inadmissible) and greedily refill the freed space; keep the result
  only if total benefit strictly improves.

Moves preserve admissibility and the strict space budget.  Every accepted
move strictly increases benefit, and benefit is bounded, so the search
terminates; ``max_rounds`` caps it deterministically anyway.

This is *our* extension (DESIGN.md §7): the paper stops at the greedy
guarantee.  Tests check it never hurts and repairs the Figure 2
1-greedy pathology.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import (
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    as_engine,
    check_space,
    resolve_lazy,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult, Stage, make_result
from repro.runtime.checkpoint import CheckpointError, StageRecord

#: Scope tag of local-search move records in checkpoints.  Move records
#: hold human-readable labels, not structure names — they are *not*
#: replayed; resume jumps straight to the checkpointed selection.
MOVE_SCOPE = "move"


class LocalSearchRefiner:
    """Hill-climbing refinement of an existing selection.

    Parameters
    ----------
    max_rounds:
        Maximum improvement rounds (each round scans all moves once).
    lazy:
        ``None`` (default) follows the engine backend.  When lazy, the
        add-move scan consults the maintained single-benefit cache and
        only evaluates structures whose cached benefit is positive — a
        structure with zero cached benefit has exactly zero marginal
        gain, so the scan's picks are identical to the eager one.
    """

    name = "local search"

    def __init__(self, max_rounds: int = 20, lazy: Optional[bool] = None):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = int(max_rounds)
        self.lazy = lazy

    def config(self) -> dict:
        return {
            "class": "LocalSearchRefiner",
            "params": {"max_rounds": self.max_rounds, "lazy": self.lazy},
        }

    def refine(
        self,
        graph: GraphLike,
        space: float,
        selection: Sequence[str],
        protected: Sequence[str] = (),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        """Improve ``selection`` within ``space``; returns a new result.

        ``protected`` names structures that must stay selected (e.g. the
        top view).  The input selection must be admissible and fit.

        With a ``context``, the search checkpoints at *round* boundaries
        (after each improving round) — mid-round resume would reorder
        moves, so resume restores the checkpointed set and benefit and
        continues from the next round, which is bit-identical to the
        uninterrupted run (each round is a pure function of the set and
        the running benefit).
        """
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        current: Set[int] = {engine.structure_id(name) for name in selection}
        protected_ids = {engine.structure_id(name) for name in protected}
        missing = protected_ids - current
        if missing:
            raise ValueError(
                "protected structures must be part of the selection: "
                + ", ".join(engine.name_of(i) for i in missing)
            )
        if not engine.is_admissible(current):
            raise ValueError("input selection is not admissible")
        if engine.space_of(current) > space + SPACE_EPS:
            raise ValueError("input selection exceeds the space budget")

        if context is not None:
            context.bind(self, engine, space)
        protected_names = sorted(engine.name_of(i) for i in protected_ids)
        moves: List[Stage] = []
        start_round = 0
        resume = context.resume_checkpoint if context is not None else None
        if resume is not None:
            if resume.extra.get("protected", []) != protected_names:
                raise CheckpointError(
                    f"checkpoint protected set {resume.extra.get('protected')} "
                    f"differs from this run's {protected_names}"
                )
            # jump straight to the checkpointed set; past moves come from
            # the records (labels only — moves are not replayed), and the
            # running benefit from the extra block (JSON round-trips
            # floats exactly, so the continuation is bit-identical)
            for record in resume.stages:
                context.replay_next(record.scope)
                context.record_stage(record)
                moves.append(
                    Stage(
                        structures=tuple(record.structures),
                        benefit=record.benefit,
                        space=record.space,
                        tau_after=record.tau_after,
                    )
                )
            current = {engine.structure_id(name) for name in resume.selected}
            start_round = resume.stage_counter
            context.stage_counter = start_round
            best_benefit = float(resume.extra["benefit"])
        else:
            best_benefit = self._benefit(engine, current)

        try:
            for _round in range(start_round, self.max_rounds):
                improved = False

                candidate = self._best_add(engine, current, space, lazy)
                if candidate is not None:
                    added, gain = candidate
                    current.add(added)
                    best_benefit += gain
                    move = Stage(
                        structures=(f"+{engine.name_of(added)}",),
                        benefit=gain,
                        space=float(engine.spaces[added]),
                        tau_after=self._tau(engine, current),
                    )
                    moves.append(move)
                    self._record_move(context, move)
                    improved = True

                swap = self._best_swap(
                    engine, current, space, best_benefit, protected_ids
                )
                if swap is not None:
                    removed, added, new_benefit = swap
                    gain = new_benefit - best_benefit
                    current -= removed
                    current |= added
                    best_benefit = new_benefit
                    label = (
                        "swap -{"
                        + ", ".join(sorted(engine.name_of(i) for i in removed))
                        + "} +{"
                        + ", ".join(sorted(engine.name_of(i) for i in added))
                        + "}"
                    )
                    move = Stage(
                        structures=(label,),
                        benefit=gain,
                        space=0.0,
                        tau_after=self._tau(engine, current),
                    )
                    moves.append(move)
                    self._record_move(context, move)
                    improved = True

                if not improved:
                    break
                if context is not None:
                    ordered = self._commit_current(engine, current)
                    context.stage_boundary(
                        engine,
                        selected=[engine.name_of(i) for i in ordered],
                        extra={
                            "benefit": best_benefit,
                            "protected": protected_names,
                        },
                    )
        except RuntimeStop as stop:
            stop.result = self._finish(
                engine, current, moves, space,
                interrupted=True, stop_reason=stop.reason,
            )
            raise

        return self._finish(engine, current, moves, space)

    # ------------------------------------------------------------ helpers

    def _commit_current(
        self, engine: BenefitEngine, current: Set[int]
    ) -> List[int]:
        """Reset the engine to exactly ``current`` committed; return the
        deterministic commit order."""
        engine.reset()
        ordered = self._view_first_order(engine, current)
        engine.commit(ordered)
        return ordered

    def _finish(
        self,
        engine: BenefitEngine,
        current: Set[int],
        moves: List[Stage],
        space: float,
        interrupted: bool = False,
        stop_reason: Optional[str] = None,
    ) -> SelectionResult:
        ordered = self._commit_current(engine, current)
        picked = [engine.name_of(i) for i in ordered]
        return make_result(
            self.name, engine, tuple(moves), space, picked,
            interrupted=interrupted, stop_reason=stop_reason,
        )

    @staticmethod
    def _record_move(context: Optional[RunContext], move: Stage) -> None:
        if context is None:
            return
        context.record_stage(
            StageRecord(
                scope=MOVE_SCOPE,
                structures=tuple(move.structures),
                benefit=move.benefit,
                space=move.space,
                tau_after=move.tau_after,
            )
        )

    @staticmethod
    def _view_first_order(engine: BenefitEngine, ids: Set[int]) -> List[int]:
        views = sorted(i for i in ids if engine.is_view[i])
        indexes = sorted(i for i in ids if not engine.is_view[i])
        return views + indexes

    def _benefit(self, engine: BenefitEngine, ids: Set[int]) -> float:
        engine.reset()
        if not ids:
            return 0.0
        return engine.commit(self._view_first_order(engine, ids))

    def _tau(self, engine: BenefitEngine, ids: Set[int]) -> float:
        engine.reset()
        engine.commit(self._view_first_order(engine, ids))
        return engine.tau()

    def _best_add(
        self, engine: BenefitEngine, current: Set[int], space: float, lazy: bool = False
    ) -> Optional[Tuple[int, float]]:
        """Best single addition that fits; None if nothing helps."""
        engine.reset()
        engine.commit(self._view_first_order(engine, current))
        space_left = space - engine.space_used()
        # lazy: a structure whose maintained single benefit is zero has
        # exactly zero marginal gain (the cached value is a sum of the same
        # nonnegative per-query terms), so skipping it cannot change the
        # scan's outcome; surviving candidates still use benefit_of, which
        # is bitwise identical across backends.
        singles = engine.single_benefits(lazy=True) if lazy else None
        best: Optional[Tuple[int, float]] = None
        for sid in range(engine.n_structures):
            if sid in current:
                continue
            if singles is not None and singles[sid] <= 0.0:
                continue
            if float(engine.spaces[sid]) > space_left + SPACE_EPS:
                continue
            if not engine.is_view[sid] and int(engine.view_id_of[sid]) not in current:
                continue
            gain = engine.benefit_of([sid])
            if gain <= 0:
                continue
            if best is None or gain > best[1]:
                best = (sid, gain)
        return best

    def _best_swap(
        self,
        engine: BenefitEngine,
        current: Set[int],
        space: float,
        current_benefit: float,
        protected: Set[int],
    ) -> Optional[Tuple[Set[int], Set[int], float]]:
        """Best remove-and-refill move that strictly improves benefit."""
        best: Optional[Tuple[Set[int], Set[int], float]] = None
        for sid in sorted(current):
            if sid in protected:
                continue
            removal = {sid}
            if engine.is_view[sid]:
                # a view leaves with all its selected indexes
                removal |= {
                    int(i) for i in engine.index_ids_of(sid) if int(i) in current
                }
                if removal & protected:
                    continue
            remainder = current - removal
            refilled, benefit = self._greedy_fill(engine, remainder, space)
            if benefit > current_benefit * (1 + 1e-12) and benefit > current_benefit + 1e-9:
                if best is None or benefit > best[2]:
                    best = (removal, refilled - remainder, benefit)
        return best

    def _greedy_fill(
        self, engine: BenefitEngine, base: Set[int], space: float
    ) -> Tuple[Set[int], float]:
        """Refill the freed space with a strict 2-greedy pass on top of
        ``base``.

        Using r = 2 (not 1) matters: a removed structure's space may be
        best spent on a view whose value lives in its indexes, which a
        1-greedy refill could never see — the very pathology the paper's
        Section 1 describes.
        """
        from repro.algorithms.rgreedy import RGreedy  # local: avoid cycle

        seed_names = [
            engine.name_of(i) for i in self._view_first_order(engine, base)
        ]
        # always serial: local search restores engine state mid-run, which
        # a live pool's shared state snapshot would not follow
        result = RGreedy(2, fit="strict", workers=1).run(
            engine, space, seed=seed_names
        )
        selection = {engine.structure_id(name) for name in result.selected}
        return selection, result.benefit
