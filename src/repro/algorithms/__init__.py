"""Selection algorithms: r-greedy, inner-level greedy, baselines, optimal."""

from repro.algorithms.base import FIT_PAPER, FIT_STRICT, SelectionAlgorithm, as_engine
from repro.algorithms.guarantees import (
    guarantee_curve,
    inner_level_guarantee,
    inner_level_space_bound,
    knee_of_curve,
    r_greedy_guarantee,
    r_greedy_limit,
    r_greedy_space_bound,
)
from repro.algorithms.hru import HRUGreedy
from repro.algorithms.inner_level import InnerLevelGreedy
from repro.algorithms.local_search import LocalSearchRefiner
from repro.algorithms.maintenance_aware import (
    MaintenanceAwareGreedy,
    structure_update_costs,
)
from repro.algorithms.pbs import PickBySmallest
from repro.algorithms.optimal import (
    BranchAndBoundOptimal,
    SearchBudgetExceeded,
    exhaustive_optimal,
)
from repro.algorithms.rgreedy import RGreedy
from repro.algorithms.two_step import TwoStep

__all__ = [
    "FIT_PAPER",
    "FIT_STRICT",
    "BranchAndBoundOptimal",
    "HRUGreedy",
    "InnerLevelGreedy",
    "LocalSearchRefiner",
    "MaintenanceAwareGreedy",
    "PickBySmallest",
    "RGreedy",
    "SearchBudgetExceeded",
    "SelectionAlgorithm",
    "TwoStep",
    "as_engine",
    "exhaustive_optimal",
    "guarantee_curve",
    "inner_level_guarantee",
    "inner_level_space_bound",
    "knee_of_curve",
    "r_greedy_guarantee",
    "r_greedy_limit",
    "r_greedy_space_bound",
    "structure_update_costs",
]
