"""Maintenance-aware greedy selection (the [G97] objective).

The paper optimizes query cost under a space budget; its cited companion
framework [G97] generalizes the objective to *query cost plus update
cost*: every materialized structure must be refreshed when facts arrive,
so a structure's net value is its query benefit minus the maintenance it
induces.

This extension implements a 2-greedy-shaped selection under the
penalized objective

    net(C, M) = B(C, M) − λ · Σ_{s ∈ C} u(s)

where ``u(s)`` is the refresh cost of structure ``s`` per delta batch
(from :func:`repro.engine.maintenance.estimate_refresh_cost`'s model:
``delta_rows + |view|`` for a view, ``|view|`` for an index rebuild) and
``λ`` is the update-to-query rate ratio.  With ``λ = 0`` the algorithm
degenerates to plain 2-greedy, which the tests assert; as ``λ`` grows it
drops the big, hot-to-maintain structures first.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import (
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_space,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult
from repro.parallel import ChainSink, make_evaluator


def structure_update_costs(engine, delta_rows: float) -> np.ndarray:
    """Per-structure refresh cost per delta batch, in rows.

    Mirrors what :func:`repro.engine.maintenance.apply_delta` actually
    does: a view refresh scans the delta plus the view; an index rebuild
    touches the owning view's rows.
    """
    if delta_rows < 0:
        raise ValueError("delta_rows must be >= 0")
    costs = np.empty(engine.n_structures, dtype=np.float64)
    for sid in range(engine.n_structures):
        owner_space = float(engine.spaces[int(engine.view_id_of[sid])])
        if engine.is_view[sid]:
            costs[sid] = delta_rows + owner_space
        else:
            costs[sid] = owner_space
    return costs


class MaintenanceAwareGreedy(SelectionAlgorithm):
    """Greedy selection under the query-plus-update objective.

    Parameters
    ----------
    update_weight:
        λ — how many delta batches arrive per unit of query workload.
        ``0`` recovers the plain (2-greedy) behaviour.
    delta_rows:
        Rows per delta batch, for the update-cost model.
    """

    def __init__(
        self,
        update_weight: float = 0.0,
        delta_rows: float = 1000.0,
        workers: Optional[int] = None,
    ):
        if update_weight < 0:
            raise ValueError("update_weight must be >= 0")
        if delta_rows < 0:
            raise ValueError("delta_rows must be >= 0")
        self.update_weight = float(update_weight)
        self.delta_rows = float(delta_rows)
        self.workers = workers
        self.name = f"maintenance-aware greedy (λ={self.update_weight:g})"

    def config(self) -> dict:
        return {
            "class": "MaintenanceAwareGreedy",
            "params": {
                "update_weight": self.update_weight,
                "delta_rows": self.delta_rows,
                "workers": self.workers,
            },
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        update_costs = structure_update_costs(engine, self.delta_rows)
        tracker = StageTracker(self, engine, space, context)
        evaluator = make_evaluator(engine, self.workers)
        tracker.set_evaluator(evaluator)
        try:
            tracker.apply_seed(seed)
            while engine.space_used() < space - SPACE_EPS:
                if tracker.replay_stage() is not None:
                    continue
                candidate = evaluator.maintenance_stage(
                    self, engine, space, update_costs
                )
                if candidate is None:
                    break
                ids, cand_space = candidate
                tracker.commit_stage(ids, stage_space=cand_space)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        finally:
            evaluator.close()
        return tracker.finish()

    # ------------------------------------------------------------ internals

    def _best_stage(self, engine: BenefitEngine, space: float, update_costs):
        space_left = space - engine.space_used()
        singles = engine.single_benefits()
        sink = ChainSink()
        self._scan_views(
            engine, engine.view_ids(), sink, space_left, update_costs, singles
        )
        if sink.ids is None:
            return None
        return sink.ids, sink.space

    def _scan_views(
        self, engine, view_ids, sink, space_left, update_costs, singles
    ) -> None:
        """Offer every candidate (with its *net* benefit) rooted at
        ``view_ids`` to ``sink``, in the canonical view-major order —
        shared by the serial stage and the pool workers."""
        selected = engine.selected_mask

        def offer(ids, benefit):
            cand_space = engine.space_of(ids)
            if cand_space <= 0 or cand_space > space_left + SPACE_EPS:
                return
            net = benefit - self.update_weight * float(
                update_costs[list(ids)].sum()
            )
            sink.offer(tuple(ids), net, cand_space)

        best_vec = engine.best_costs
        for view_id in view_ids:
            view_id = int(view_id)
            if selected[view_id]:
                for idx in engine.index_ids_of(view_id):
                    idx = int(idx)
                    if not selected[idx]:
                        offer([idx], float(singles[idx]))
                continue
            offer([view_id], float(singles[view_id]))
            # 2-greedy shape: the view with its single best index
            base = engine.minimum_with(best_vec, view_id)
            idxs = [
                int(i) for i in engine.index_ids_of(view_id) if not selected[int(i)]
            ]
            if idxs:
                gains = engine.gains_for(np.asarray(idxs, dtype=np.int64), base)
                pos = int(np.argmax(gains))
                offer(
                    [view_id, idxs[pos]],
                    float(singles[view_id]) + float(gains[pos]),
                )
