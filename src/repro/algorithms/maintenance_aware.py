"""Maintenance-aware greedy selection (the [G97] objective).

The paper optimizes query cost under a space budget; its cited companion
framework [G97] generalizes the objective to *query cost plus update
cost*: every materialized structure must be refreshed when facts arrive,
so a structure's net value is its query benefit minus the maintenance it
induces.

This extension implements a 2-greedy-shaped selection under the
penalized objective

    net(C, M) = B(C, M) − λ · Σ_{s ∈ C} u(s)

where ``u(s)`` is the refresh cost of structure ``s`` per delta batch
(from :func:`repro.engine.maintenance.estimate_refresh_cost`'s model:
``delta_rows + |view|`` for a view, ``|view|`` for an index rebuild) and
``λ`` is the update-to-query rate ratio.  With ``λ = 0`` the algorithm
degenerates to plain 2-greedy, which the tests assert; as ``λ`` grows it
drops the big, hot-to-maintain structures first.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import (
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_space,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult


def structure_update_costs(
    engine: BenefitEngine, delta_rows: float
) -> np.ndarray:
    """Per-structure refresh cost per delta batch, in rows.

    Mirrors what :func:`repro.engine.maintenance.apply_delta` actually
    does: a view refresh scans the delta plus the view; an index rebuild
    touches the owning view's rows.
    """
    if delta_rows < 0:
        raise ValueError("delta_rows must be >= 0")
    costs = np.empty(engine.n_structures, dtype=np.float64)
    for sid in range(engine.n_structures):
        owner_space = float(engine.spaces[int(engine.view_id_of[sid])])
        if engine.is_view[sid]:
            costs[sid] = delta_rows + owner_space
        else:
            costs[sid] = owner_space
    return costs


class MaintenanceAwareGreedy(SelectionAlgorithm):
    """Greedy selection under the query-plus-update objective.

    Parameters
    ----------
    update_weight:
        λ — how many delta batches arrive per unit of query workload.
        ``0`` recovers the plain (2-greedy) behaviour.
    delta_rows:
        Rows per delta batch, for the update-cost model.
    """

    def __init__(self, update_weight: float = 0.0, delta_rows: float = 1000.0):
        if update_weight < 0:
            raise ValueError("update_weight must be >= 0")
        if delta_rows < 0:
            raise ValueError("delta_rows must be >= 0")
        self.update_weight = float(update_weight)
        self.delta_rows = float(delta_rows)
        self.name = f"maintenance-aware greedy (λ={self.update_weight:g})"

    def config(self) -> dict:
        return {
            "class": "MaintenanceAwareGreedy",
            "params": {
                "update_weight": self.update_weight,
                "delta_rows": self.delta_rows,
            },
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        update_costs = structure_update_costs(engine, self.delta_rows)
        tracker = StageTracker(self, engine, space, context)
        try:
            tracker.apply_seed(seed)
            while engine.space_used() < space - SPACE_EPS:
                if tracker.replay_stage() is not None:
                    continue
                candidate = self._best_stage(engine, space, update_costs)
                if candidate is None:
                    break
                ids, cand_space = candidate
                tracker.commit_stage(ids, stage_space=cand_space)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        return tracker.finish()

    # ------------------------------------------------------------ internals

    def _best_stage(self, engine: BenefitEngine, space: float, update_costs):
        space_left = space - engine.space_used()
        selected = engine.selected_ids
        singles = engine.single_benefits()
        best: Optional[tuple] = None
        best_ratio = 0.0

        def offer(ids, benefit):
            nonlocal best, best_ratio
            cand_space = engine.space_of(ids)
            if cand_space <= 0 or cand_space > space_left + SPACE_EPS:
                return
            net = benefit - self.update_weight * float(
                update_costs[list(ids)].sum()
            )
            if net <= 0:
                return
            ratio = net / cand_space
            if best is None or ratio > best_ratio * (1 + 1e-12):
                best = (tuple(ids), cand_space)
                best_ratio = ratio

        best_vec = engine.best_costs
        for view_id in engine.view_ids():
            view_id = int(view_id)
            if view_id in selected:
                for idx in engine.index_ids_of(view_id):
                    idx = int(idx)
                    if idx not in selected:
                        offer([idx], float(singles[idx]))
                continue
            offer([view_id], float(singles[view_id]))
            # 2-greedy shape: the view with its single best index
            base = engine.minimum_with(best_vec, view_id)
            idxs = [
                int(i) for i in engine.index_ids_of(view_id) if int(i) not in selected
            ]
            if idxs:
                gains = engine.gains_for(np.asarray(idxs, dtype=np.int64), base)
                pos = int(np.argmax(gains))
                offer(
                    [view_id, idxs[pos]],
                    float(singles[view_id]) + float(gains[pos]),
                )
        return best
