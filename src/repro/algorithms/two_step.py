"""The two-step baseline the paper argues against (Section 2, [MS95]).

Commercial ROLAP practice circa 1996: split the space budget between
summary tables and indexes *a priori*, pick views first (with the [HRU96]
greedy restricted to its share of the space), then pick indexes on the
chosen views (greedily, within the remaining share).

The split fraction is a parameter; the paper's Example 2.1 uses an equal
split and shows the one-step 1-greedy beats it by ~40% because the right
split (about 3/4 to indexes there) cannot be known in advance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_fit,
    check_space,
    resolve_lazy,
)
from repro.algorithms.hru import HRUGreedy
from repro.core.selection import SelectionResult
from repro.parallel import make_evaluator


class TwoStep(SelectionAlgorithm):
    """Two-step selection: views in ``view_fraction·S``, then indexes.

    Parameters
    ----------
    view_fraction:
        Fraction of the budget reserved for views (default 0.5, the
        "divide equally" strategy of Example 2.1).
    fit:
        Space-fit policy applied to both steps (default strict).
    index_budget_mode:
        ``"fraction"`` (default) gives the index step its fixed
        ``(1 − f)·S`` share — the a-priori split the paper criticizes;
        ``"remaining"`` hands it whatever the view step left unused,
        a mildly smarter variant that still cannot redeem a bad split
        (tests demonstrate both).
    lazy:
        ``None`` (default) follows the engine backend; both step loops use
        the maintained single-benefit cache when lazy.  Selections are
        identical either way.
    """

    def __init__(
        self,
        view_fraction: float = 0.5,
        fit: str = FIT_STRICT,
        index_budget_mode: str = "fraction",
        lazy: Optional[bool] = None,
        workers: Optional[int] = None,
    ):
        if not 0.0 < view_fraction < 1.0:
            raise ValueError(
                f"view_fraction must be in (0, 1), got {view_fraction}"
            )
        if index_budget_mode not in ("fraction", "remaining"):
            raise ValueError(
                "index_budget_mode must be 'fraction' or 'remaining', "
                f"got {index_budget_mode!r}"
            )
        self.view_fraction = float(view_fraction)
        self.fit = check_fit(fit)
        self.index_budget_mode = index_budget_mode
        self.lazy = lazy
        self.workers = workers
        self.name = f"two-step (views {self.view_fraction:.0%})"

    def config(self) -> dict:
        return {
            "class": "TwoStep",
            "params": {
                "view_fraction": self.view_fraction,
                "fit": self.fit,
                "index_budget_mode": self.index_budget_mode,
                "lazy": self.lazy,
                "workers": self.workers,
            },
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        view_budget = space * self.view_fraction
        # bind before delegating so the checkpoint names TwoStep (first
        # bind wins); the index loop's stages carry this tracker's scope,
        # distinct from the HRU step's, so resume replays each loop's own
        # stages only
        tracker = StageTracker(self, engine, space, context, scope="TwoStep.index")
        # both steps share one evaluator (one pool, one shared-memory
        # export); the HRU step receives it explicitly and leaves closing
        # to us
        evaluator = make_evaluator(engine, self.workers)
        tracker.set_evaluator(evaluator)
        try:
            # step 1: [HRU96] greedy over views, within the view share.
            # Running it on the shared engine leaves the chosen views
            # committed, so the index step below starts from that state.
            # The seed (typically the top view) counts against the view
            # share.
            hru = HRUGreedy(fit=self.fit, lazy=lazy)
            try:
                step1 = hru.run(
                    engine, view_budget, seed=seed, context=context,
                    evaluator=evaluator,
                )
            except RuntimeStop as stop:
                tracker.adopt(stop.result)
                raise tracker.interrupted(stop)
            tracker.adopt(step1)

            # step 2: greedy single indexes on the selected views, within
            # the index share.
            if self.index_budget_mode == "remaining":
                index_budget = space - engine.space_used()
            else:
                index_budget = space - view_budget
            try:
                self._index_loop(engine, index_budget, lazy, tracker, evaluator)
            except RuntimeStop as stop:
                raise tracker.interrupted(stop)
        finally:
            evaluator.close()
        return tracker.finish()

    def _index_loop(self, engine, index_budget, lazy, tracker, evaluator) -> None:
        index_used = 0.0
        strict = self.fit == FIT_STRICT

        # candidate indexes: those of the views picked in step 1, in the
        # deterministic view-then-index order
        candidate_indexes = np.asarray(
            [
                int(idx)
                for view_id in engine.view_ids()
                if engine.is_selected(int(view_id))
                for idx in engine.index_ids_of(int(view_id))
            ],
            dtype=np.int64,
        )
        while candidate_indexes.size and index_used < index_budget - SPACE_EPS:
            replayed = tracker.replay_stage()
            if replayed is not None:
                index_used += replayed.space
                continue
            space_left = index_budget - index_used
            # one best-single pass over the candidate indexes: same
            # candidate order, filters, and tie-break in the lazy, eager,
            # and parallel evaluators
            pick = evaluator.single_stage(
                engine, candidate_indexes, space_left if strict else None, lazy
            )
            if pick is None:
                break
            best_id, best_benefit, best_space, _ratio = pick
            tracker.commit_stage(
                [best_id], stage_space=best_space, stage_benefit=best_benefit
            )
            index_used += best_space
