"""The inner-level greedy algorithm (Algorithm 5.2 of the paper).

Each stage has two phases:

* **Phase 1** — for every unselected view ``v_i``, grow a set ``IG_i``
  starting from ``{v_i}`` by repeatedly adding the index of ``v_i`` with
  maximum benefit per unit space w.r.t. ``M ∪ IG_i`` (the *inner* greedy),
  while ``S(IG_i)`` stays below the total budget ``S``.  The best ``IG_i``
  by benefit per unit space becomes the stage candidate ``C``.
* **Phase 2** — the single unselected index (of an already selected view)
  with maximum benefit per unit space challenges ``C``; the better of the
  two is committed.

Stages repeat while ``S(M) < S``; the final selection uses at most ``2·S``
space (Theorem 5.2) and achieves at least ``1 − 1/e^0.63 ≈ 0.467`` of the
optimal benefit attainable in the space it used, in ``O(k²·m²)`` time.

Two inner-growth rules are provided:

``"space"`` (default, the paper's listing)
    grow ``IG_i`` while ``S(IG_i) < S`` (stopping early once no index adds
    positive benefit, which only improves the candidate's ratio);
``"peak"`` (the paper's prose)
    grow the same way but return the prefix of ``IG_i`` at which benefit
    per unit space is maximal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import (
    FIT_PAPER,
    FIT_STRICT,
    SPACE_EPS,
    GraphLike,
    RunContext,
    RuntimeStop,
    SelectionAlgorithm,
    StageTracker,
    as_engine,
    check_fit,
    check_space,
    resolve_lazy,
)
from repro.core.benefit import BenefitEngine
from repro.core.selection import SelectionResult
from repro.parallel import ChainSink, make_evaluator

IG_SPACE = "space"
IG_PEAK = "peak"


class InnerLevelGreedy(SelectionAlgorithm):
    """Inner-level greedy selection of views and indexes.

    ``lazy=None`` (default) follows the engine: on the sparse backend the
    maintained single-benefit cache supplies an upper bound on every
    view's inner-greedy ratio (a set's benefit/space never exceeds the
    best of its members' standalone ratios), so views that cannot displace
    the stage incumbent skip the inner greedy entirely.  Candidate order
    and tie-break match the eager loop, so selections are identical.
    """

    name = "inner-level greedy"

    def __init__(
        self,
        fit: str = FIT_PAPER,
        ig_rule: str = IG_SPACE,
        lazy: Optional[bool] = None,
        workers: Optional[int] = None,
    ):
        self.fit = check_fit(fit)
        if ig_rule not in (IG_SPACE, IG_PEAK):
            raise ValueError(f"ig_rule must be 'space' or 'peak', got {ig_rule!r}")
        self.ig_rule = ig_rule
        self.lazy = lazy
        self.workers = workers

    def config(self) -> dict:
        return {
            "class": "InnerLevelGreedy",
            "params": {
                "fit": self.fit,
                "ig_rule": self.ig_rule,
                "lazy": self.lazy,
                "workers": self.workers,
            },
        }

    def run(
        self,
        graph: GraphLike,
        space: float,
        seed=(),
        context: Optional[RunContext] = None,
    ) -> SelectionResult:
        space = check_space(space)
        engine = as_engine(graph)
        lazy = resolve_lazy(self.lazy, engine)
        tracker = StageTracker(self, engine, space, context)
        evaluator = make_evaluator(engine, self.workers)
        tracker.set_evaluator(evaluator)
        try:
            tracker.apply_seed(seed)
            while engine.space_used() < space - SPACE_EPS:
                if tracker.replay_stage() is not None:
                    continue
                candidate = evaluator.inner_stage(self, engine, space, lazy)
                if candidate is None:
                    break
                ids, cand_space = candidate
                tracker.commit_stage(ids, stage_space=cand_space)
        except RuntimeStop as stop:
            raise tracker.interrupted(stop)
        finally:
            evaluator.close()
        return tracker.finish()

    # ------------------------------------------------------------ internals

    def _best_stage(self, engine: BenefitEngine, space: float, lazy: bool):
        """Return ``(ids, space)`` of the stage's winning set, or ``None``."""
        strict = self.fit == FIT_STRICT
        space_left = space - engine.space_used()
        ig_cap = space_left if strict else space
        sink = ChainSink()
        singles = engine.single_benefits(lazy=True) if lazy else None
        view_ids = engine.view_ids()
        self._scan_phase1(
            engine, view_ids, sink, singles, space_left, ig_cap, strict
        )
        self._scan_phase2(engine, view_ids, sink, space_left, strict, lazy)
        if sink.ids is None:
            return None
        return sink.ids, sink.space

    @staticmethod
    def _offer(sink, ids, benefit, cand_space, space_left, strict) -> None:
        """The stage's offer rule: strict fit filter, then the sink's
        chain (the sink already rejects non-positive benefit/space)."""
        if strict and cand_space > space_left + SPACE_EPS:
            return
        sink.offer(ids, benefit, cand_space)

    def _scan_phase1(
        self, engine, view_ids, sink, singles, space_left, ig_cap, strict
    ) -> None:
        """Phase 1 over ``view_ids``: per-view inner greedy.  Shared by
        the serial stage (sink = incumbent chain) and pool workers (sink
        = recorder over the worker's shard of the view order); ``singles``
        is the maintained cache, or ``None`` to disable the lazy prune."""
        best_vec = engine.best_costs
        freq = engine.frequencies
        selected_mask = engine.selected_mask
        for view_id in view_ids:
            view_id = int(view_id)
            if selected_mask[view_id]:
                continue
            if singles is not None and self._view_pruned(
                engine, singles, view_id, selected_mask, sink
            ):
                continue
            ig = self._grow_ig(engine, view_id, best_vec, freq, ig_cap, selected_mask)
            if ig is not None:
                ids, benefit, cand_space = ig
                self._offer(sink, ids, benefit, cand_space, space_left, strict)

    def _scan_phase2(
        self, engine, view_ids, sink, space_left, strict, lazy
    ) -> None:
        """Phase 2 over ``view_ids``: single unselected indexes of
        already-selected views (vectorized benefits)."""
        selected_mask = engine.selected_mask
        phase2 = [
            int(idx)
            for view_id in view_ids
            if selected_mask[int(view_id)]
            for idx in engine.index_ids_of(int(view_id))
            if not selected_mask[int(idx)]
        ]
        if phase2:
            benefits = engine.single_benefits(phase2, lazy=lazy)
            for pos, idx in enumerate(phase2):
                self._offer(
                    sink,
                    (idx,),
                    float(benefits[pos]),
                    float(engine.spaces[idx]),
                    space_left,
                    strict,
                )

    @staticmethod
    def _view_pruned(
        engine,
        singles: np.ndarray,
        view_id: int,
        selected_mask: np.ndarray,
        sink,
    ) -> bool:
        """True when no IG set grown from this view can displace the
        incumbent: a set's benefit/space ratio never exceeds the maximum
        standalone benefit/space ratio of its members (mediant inequality
        plus subadditivity), all of which the maintained cache bounds."""
        ratio_ub = float(singles[view_id]) / float(engine.spaces[view_id])
        idx_ids = engine.index_ids_of(view_id)
        if idx_ids.size:
            idx_ids = idx_ids[~selected_mask[idx_ids]]
        if idx_ids.size:
            idx_ub = float((singles[idx_ids] / engine.spaces[idx_ids]).max())
            ratio_ub = max(ratio_ub, idx_ub)
        if ratio_ub <= 0.0:
            return True  # the grown set's benefit cannot be positive
        if sink.ids is None:
            return False
        return ratio_ub <= sink.prune_ratio

    def _grow_ig(
        self,
        engine: BenefitEngine,
        view_id: int,
        best_vec: np.ndarray,
        freq: np.ndarray,
        ig_cap: float,
        selected_mask: np.ndarray,
    ):
        """Inner greedy for one view: returns ``(ids, benefit, space)`` of
        the grown set (or its peak-ratio prefix), or ``None``."""
        # note: a bare view larger than the growth cap is still offered —
        # Theorem 5.2 assumes no structure exceeds S, and the while-loop
        # below simply adds no indexes in that case.
        view_space = float(engine.spaces[view_id])
        cur_min = engine.minimum_with(best_vec, view_id)
        cur_benefit = float(freq @ (best_vec - cur_min))
        cur_space = view_space
        chosen = [view_id]

        remaining = [
            int(i) for i in engine.index_ids_of(view_id) if not selected_mask[int(i)]
        ]
        history = [(tuple(chosen), cur_benefit, cur_space)]

        while remaining and cur_space < ig_cap - SPACE_EPS:
            # vectorized inner greedy: gain of every remaining index
            # against the growing set's current per-query minimum
            idx_arr = np.asarray(remaining, dtype=np.int64)
            gains = engine.gains_for(idx_arr, cur_min)
            densities = gains / engine.spaces[idx_arr]
            pos = int(np.argmax(densities))
            if gains[pos] <= 0.0:
                break
            best_idx = int(idx_arr[pos])
            best_gain = float(gains[pos])
            best_idx_space = float(engine.spaces[best_idx])
            remaining.remove(best_idx)
            cur_min = engine.minimum_with(cur_min, best_idx)
            cur_benefit += best_gain
            cur_space += best_idx_space
            chosen.append(best_idx)
            history.append((tuple(chosen), cur_benefit, cur_space))

        if self.ig_rule == IG_PEAK:
            best_entry = max(history, key=lambda e: e[1] / e[2])
            ids, benefit, cand_space = best_entry
            return (ids, benefit, cand_space) if benefit > 0 else None
        ids, benefit, cand_space = history[-1]
        return (tuple(ids), benefit, cand_space) if benefit > 0 else None
