"""Correlation-aware analytical view sizes.

The independence model (Section 4.2.1) predicts ``|ps| ≈ 6M`` for TPC-D,
but Figure 1 says 0.8M: each part is supplied by about four suppliers, so
the *effective* cell count of ``{p, s}`` is ``|p| · 4``, not
``|p| · |s|``.  This module generalizes the analytical estimator with the
same child→(parent, fanout) correlations the synthetic generator
(:mod:`repro.cube.generator`) produces, which lets the whole Figure 1
lattice be **derived** rather than transcribed:

>>> from repro.datasets.tpcd import tpcd_schema, TPCD_RAW_ROWS
>>> lattice = correlated_lattice(tpcd_schema(), TPCD_RAW_ROWS,
...                              {"s": ("p", 4)})
>>> round(lattice.size(View.of("p", "s")) / 1e5)       # Figure 1: 0.8M
8

Effective cell counts: within an attribute set, a correlated child
contributes a factor of ``fanout`` when its parent is present (its values
are determined up to the fanout), and ``min(child_card, parent_card ·
fanout)`` when alone (its reachable domain).  Chains of correlations are
rejected, matching the generator.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.core.lattice import CubeLattice
from repro.core.view import View
from repro.cube.schema import CubeSchema
from repro.estimation.sizes import expected_distinct

Correlations = Mapping[str, Tuple[str, int]]


def _validate(schema: CubeSchema, correlations: Correlations) -> None:
    for child, (parent, fanout) in correlations.items():
        if child not in schema or parent not in schema:
            raise KeyError(f"correlation {child!r}->{parent!r}: unknown dimension")
        if child == parent:
            raise ValueError(f"dimension {child!r} cannot correlate with itself")
        if parent in correlations:
            raise ValueError(f"correlation parent {parent!r} is itself correlated")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")


def effective_cells(
    schema: CubeSchema,
    view: View,
    correlations: Correlations,
) -> float:
    """Effective dense cell count of a view's attribute set under the
    given correlations."""
    _validate(schema, correlations)
    cells = 1.0
    for attr in view.attrs:
        if attr in correlations:
            parent, fanout = correlations[attr]
            if parent in view.attrs:
                # parent counted separately; the child only multiplies by
                # its per-parent fanout
                cells *= min(fanout, schema.cardinality(attr))
            else:
                # reachable child domain: every parent value maps to at
                # most `fanout` children
                cells *= min(
                    schema.cardinality(attr),
                    schema.cardinality(parent) * fanout,
                )
        else:
            cells *= schema.cardinality(attr)
    return cells


def correlated_view_size(
    schema: CubeSchema,
    view: View,
    raw_rows: float,
    correlations: Correlations,
) -> float:
    """Analytical row count of a view under correlations."""
    if not view.attrs:
        return 1.0
    cells = effective_cells(schema, view, correlations)
    return max(1.0, expected_distinct(cells, raw_rows))


def correlated_lattice(
    schema: CubeSchema,
    raw_rows: float,
    correlations: Correlations,
) -> CubeLattice:
    """A lattice sized with the correlation-aware analytical model.

    With ``correlations={}`` this is exactly
    :func:`repro.estimation.sizes.analytical_lattice`.
    """
    if raw_rows < 1:
        raise ValueError("raw_rows must be >= 1")
    _validate(schema, correlations)
    return CubeLattice.from_estimator(
        schema,
        lambda view: correlated_view_size(schema, view, raw_rows, correlations),
    )
