"""The index-size model of Section 4.2.2.

A B-tree index on view ``V`` stores one leaf entry per row of ``V``, so —
measuring space in rows, as the whole paper does — the size of *any* index
on ``V`` equals the size of ``V``.  Two consequences the algorithms rely
on:

1. materializing a view with all its fat indexes costs
   ``(m! + 1) · |V|`` rows for an ``m``-attribute view;
2. prefix-dominated indexes can be pruned (same space, never cheaper),
   leaving only the fat indexes.

The module also provides a refined leaf-count model (entries per leaf
page > 1) for users who want physical sizes; the default used everywhere
matches the paper exactly.
"""

from __future__ import annotations

import math

from repro.core.index import Index
from repro.core.lattice import CubeLattice
from repro.core.view import View


def index_size(lattice: CubeLattice, index: Index) -> float:
    """Space (in rows) of an index under the paper's model: ``|view|``."""
    return lattice.size(index.view)


def view_with_all_fat_indexes_size(lattice: CubeLattice, view: View) -> float:
    """Space of a view plus its ``m!`` fat indexes: ``(m! + 1)·|V|``."""
    m = len(view)
    return (math.factorial(m) + 1) * lattice.size(view)


def total_materialization_size(lattice: CubeLattice) -> float:
    """Rows needed to materialize every view and every fat index.

    For the paper's TPC-D example this is "around 80M rows"
    (Example 2.1).
    """
    return sum(
        view_with_all_fat_indexes_size(lattice, view) for view in lattice.views()
    )


def btree_leaf_count(rows: float, entries_per_leaf: int = 1) -> float:
    """Number of leaf nodes of a B-tree over ``rows`` entries.

    The paper takes ``entries_per_leaf = 1`` ("the number of leaf nodes is
    approximately the number of rows in the underlying view"); a larger
    value models physical pages holding several entries.
    """
    if rows < 0:
        raise ValueError("rows must be >= 0")
    if entries_per_leaf < 1:
        raise ValueError("entries_per_leaf must be >= 1")
    return math.ceil(rows / entries_per_leaf)
