"""Sampling-based distinct-value estimation (Section 4.2.1, [HNS95]).

When attribute independence cannot be assumed, the paper suggests sampling
the raw data (or the top view) and estimating each view's size — the
number of distinct group-by combinations — from the sample.  The original
reference [HNS95] surveys several estimators; we implement three classic
ones that work from a uniform row sample:

* :func:`scale_up_estimator` — naive linear scale-up of the sample's
  distinct count (biased low for high-cardinality attributes);
* :func:`goodman_jackknife` — the first-order jackknife
  ``D̂ = d + (1 − q) · f1 / q`` with sampling fraction ``q``;
* :func:`gee_estimator` — the Guaranteed-Error Estimator
  ``D̂ = sqrt(1/q) · f1 + Σ_{i>=2} f_i``.

All take the sample's *frequency profile*: ``f[i]`` = number of distinct
values appearing exactly ``i`` times in the sample.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np


def frequency_profile(sample_keys: Iterable) -> Dict[int, int]:
    """Frequency-of-frequencies of the sample.

    ``profile[i]`` is the number of distinct keys occurring exactly ``i``
    times.  Keys may be any hashables (attribute-combination tuples).

    >>> frequency_profile(["a", "a", "b"])
    {1: 1, 2: 1}
    """
    counts: Dict = {}
    for key in sample_keys:
        counts[key] = counts.get(key, 0) + 1
    profile: Dict[int, int] = {}
    for count in counts.values():
        profile[count] = profile.get(count, 0) + 1
    return dict(sorted(profile.items()))


def _validate(profile: Dict[int, int], sample_rows: int, total_rows: int) -> Tuple[int, int]:
    if total_rows <= 0:
        raise ValueError("total_rows must be positive")
    if sample_rows <= 0:
        raise ValueError("sample_rows must be positive")
    if sample_rows > total_rows:
        raise ValueError("sample cannot be larger than the relation")
    observed = sum(i * f for i, f in profile.items())
    if observed != sample_rows:
        raise ValueError(
            f"profile accounts for {observed} rows, expected {sample_rows}"
        )
    d = sum(profile.values())
    f1 = profile.get(1, 0)
    return d, f1


def scale_up_estimator(
    profile: Dict[int, int], sample_rows: int, total_rows: int
) -> float:
    """Naive estimator: scale the sample's distinct count by ``1/q``,
    capped by the obvious bounds ``d <= D̂ <= total_rows``.

    Overestimates heavily when values repeat; kept as the strawman the
    better estimators are compared against.
    """
    d, __ = _validate(profile, sample_rows, total_rows)
    q = sample_rows / total_rows
    return float(min(total_rows, max(d, d / q)))


def goodman_jackknife(
    profile: Dict[int, int], sample_rows: int, total_rows: int
) -> float:
    """First-order jackknife: ``D̂ = d + (1 − q)·f1 / q``.

    Unbiased to first order for uniform sampling fraction ``q``; clipped
    to the feasible range ``[d, total_rows]``.
    """
    d, f1 = _validate(profile, sample_rows, total_rows)
    q = sample_rows / total_rows
    estimate = d + (1.0 - q) * f1 / q
    return float(min(total_rows, max(d, estimate)))


def gee_estimator(
    profile: Dict[int, int], sample_rows: int, total_rows: int
) -> float:
    """Guaranteed-Error Estimator: ``D̂ = sqrt(1/q)·f1 + Σ_{i>=2} f_i``.

    Has a matching ratio-error guarantee of ``sqrt(1/q)`` (Charikar et
    al.); clipped to ``[d, total_rows]``.
    """
    d, f1 = _validate(profile, sample_rows, total_rows)
    q = sample_rows / total_rows
    tail = sum(f for i, f in profile.items() if i >= 2)
    estimate = math.sqrt(1.0 / q) * f1 + tail
    return float(min(total_rows, max(d, estimate)))


def sample_view_size(
    columns: Dict[str, np.ndarray],
    attrs: Sequence[str],
    sample_rows: int,
    rng: np.random.Generator,
    estimator: str = "gee",
) -> float:
    """Estimate a view's size by sampling a fact table's columns.

    Parameters
    ----------
    columns:
        ``{attribute: integer array}`` — all arrays the same length (the
        raw row count).
    attrs:
        The view's group-by attributes; empty means the 1-row view.
    sample_rows:
        Uniform sample size (without replacement).
    rng:
        Numpy random generator (caller controls seeding).
    estimator:
        ``"scale"``, ``"jackknife"`` or ``"gee"``.
    """
    if not attrs:
        return 1.0
    total_rows = len(next(iter(columns.values())))
    sample_rows = min(sample_rows, total_rows)
    picks = rng.choice(total_rows, size=sample_rows, replace=False)
    keys = list(zip(*(np.asarray(columns[a])[picks] for a in attrs)))
    profile = frequency_profile(keys)
    if estimator == "scale":
        return scale_up_estimator(profile, sample_rows, total_rows)
    if estimator == "jackknife":
        return goodman_jackknife(profile, sample_rows, total_rows)
    if estimator == "gee":
        return gee_estimator(profile, sample_rows, total_rows)
    raise ValueError(
        f"estimator must be 'scale', 'jackknife' or 'gee', got {estimator!r}"
    )
