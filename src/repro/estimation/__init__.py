"""View- and index-size estimation (Section 4.2)."""

from repro.estimation.correlated import (
    correlated_lattice,
    correlated_view_size,
    effective_cells,
)
from repro.estimation.index_sizes import (
    btree_leaf_count,
    index_size,
    total_materialization_size,
    view_with_all_fat_indexes_size,
)
from repro.estimation.sampling import (
    frequency_profile,
    gee_estimator,
    goodman_jackknife,
    sample_view_size,
    scale_up_estimator,
)
from repro.estimation.sizes import (
    analytical_lattice,
    analytical_view_size,
    exact_sizes_from_rows,
    expected_distinct,
    min_model,
    sparsity_to_rows,
)

__all__ = [
    "analytical_lattice",
    "analytical_view_size",
    "btree_leaf_count",
    "correlated_lattice",
    "correlated_view_size",
    "effective_cells",
    "exact_sizes_from_rows",
    "expected_distinct",
    "frequency_profile",
    "gee_estimator",
    "goodman_jackknife",
    "index_size",
    "min_model",
    "sample_view_size",
    "scale_up_estimator",
    "sparsity_to_rows",
    "total_materialization_size",
    "view_with_all_fat_indexes_size",
]
