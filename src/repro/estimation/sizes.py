"""Analytical view-size estimation (Section 4.2.1 of the paper).

The size of a view is the number of distinct combinations of its group-by
attributes appearing in the raw data.  When the attributes are assumed
statistically independent and the raw data holds ``r`` rows drawn
uniformly from the ``n``-cell dense cross product, the expected number of
distinct combinations is the classic balls-in-bins quantity

    D(n, r) = n · (1 − (1 − 1/n)^r)

which the paper inherits from the analytical model of [HRU96].  A cruder
but common approximation is ``min(n, r)``.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.core.lattice import CubeLattice
from repro.core.view import View
from repro.cube.schema import CubeSchema


def expected_distinct(cells: float, rows: float) -> float:
    """Expected distinct cells hit by ``rows`` uniform draws over ``cells``.

    Computed with ``expm1``/``log1p`` so that it stays accurate both when
    ``rows << cells`` (result ≈ rows) and when ``rows >> cells``
    (result ≈ cells).

    >>> expected_distinct(10, 0)
    0.0
    >>> round(expected_distinct(2, 1000), 6)
    2.0
    """
    if cells < 1:
        raise ValueError(f"cells must be >= 1, got {cells}")
    if rows < 0:
        raise ValueError(f"rows must be >= 0, got {rows}")
    if rows == 0:
        return 0.0
    if cells == 1:
        return min(rows, 1.0)
    # n * (1 - (1 - 1/n)^r) = -n * expm1(r * log1p(-1/n)); clamped to the
    # trivial bound D <= rows, which the continuous formula can breach for
    # fractional row counts below 1.
    value = -cells * math.expm1(rows * math.log1p(-1.0 / cells))
    return min(rows, value)


def min_model(cells: float, rows: float) -> float:
    """The crude ``min(cells, rows)`` size approximation."""
    if cells < 1:
        raise ValueError(f"cells must be >= 1, got {cells}")
    if rows < 0:
        raise ValueError(f"rows must be >= 0, got {rows}")
    return min(cells, rows)


def analytical_view_size(
    schema: CubeSchema,
    view: View,
    raw_rows: float,
    model: str = "expected",
) -> float:
    """Estimated rows of ``view`` given ``raw_rows`` raw fact rows.

    ``model`` is ``"expected"`` (the balls-in-bins formula) or ``"min"``.
    The empty view always has exactly one row.
    """
    if not view.attrs:
        return 1.0
    cells = schema.cells_of(view)
    if model == "expected":
        return max(1.0, expected_distinct(cells, raw_rows))
    if model == "min":
        return max(1.0, min_model(cells, raw_rows))
    raise ValueError(f"model must be 'expected' or 'min', got {model!r}")


def analytical_lattice(
    schema: CubeSchema,
    raw_rows: float,
    model: str = "expected",
) -> CubeLattice:
    """Build a :class:`CubeLattice` with analytically estimated sizes.

    This is the cube-generation model used for the paper's Section 6
    experiments ("we generated cubes using the analytical model in
    [HRU96]").  ``raw_rows`` is typically ``sparsity * schema.dense_cells``.
    """
    if raw_rows < 1:
        raise ValueError(f"raw_rows must be >= 1, got {raw_rows}")
    return CubeLattice.from_estimator(
        schema, lambda view: analytical_view_size(schema, view, raw_rows, model)
    )


def sparsity_to_rows(schema: CubeSchema, sparsity: float) -> float:
    """Raw row count for a cube of the given sparsity.

    Sparsity is the paper's Section 6 definition: the ratio of raw-data
    rows to the product of the dimension cardinalities.
    """
    if not 0.0 < sparsity <= 1.0:
        raise ValueError(f"sparsity must be in (0, 1], got {sparsity}")
    return max(1.0, sparsity * schema.dense_cells)


def exact_sizes_from_rows(
    schema: CubeSchema,
    rows: "object",
) -> Callable[[View], float]:
    """Exact view-size estimator backed by actual fact rows.

    ``rows`` is a mapping ``{dimension name: integer numpy array}`` (the
    columns of a fact table, e.g. from
    :class:`repro.engine.table.FactTable`).  Returns an estimator suitable
    for :meth:`CubeLattice.from_estimator` that counts distinct attribute
    combinations with numpy.
    """
    import numpy as np

    columns: Mapping = rows

    def estimator(view: View) -> float:
        if not view.attrs:
            return 1.0
        attrs = schema.sort_attrs(view.attrs)
        stacked = np.stack([np.asarray(columns[a]) for a in attrs], axis=1)
        return float(np.unique(stacked, axis=0).shape[0])

    return estimator
