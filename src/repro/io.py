"""JSON persistence for cubes, lattices, and selections.

A deployed advisor needs its inputs (schema + sizes) and outputs
(selections) to survive a process; this module defines a small, stable
JSON format for both.

Lattice document::

    {
      "dimensions": {"p": 200000, "s": 10000, "c": 100000},
      "measure": "sales",
      "raw_rows": 6000000,                  # for analytical sizing, or:
      "view_rows": {"psc": 6000000, "ps": 800000, ...}   # exact sizes
    }

View labels use the lattice's schema-ordered compact form (``ps``,
``none``); multi-character dimension names join with commas.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Union

from repro.core.lattice import CubeLattice
from repro.core.selection import SelectionResult
from repro.core.view import parse_view
from repro.cube.schema import CubeSchema, Dimension
from repro.estimation.sizes import analytical_lattice

PathLike = Union[str, Path]


def _require_finite(value, field: str) -> float:
    """Coerce to float and reject NaN/inf with the offending field named.

    Python's ``json`` accepts the non-standard ``NaN``/``Infinity``
    tokens, and a NaN row count or frequency silently poisons every
    comparison downstream (``NaN <= x`` is always false) — reject it at
    the door instead.
    """
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{field} must be a number, got {value!r}") from exc
    if not math.isfinite(value):
        raise ValueError(f"{field} must be finite, got {value}")
    return value


def lattice_to_dict(lattice: CubeLattice) -> Dict:
    """Serialize a lattice with exact view sizes."""
    return {
        "dimensions": {
            d.name: d.cardinality for d in lattice.schema.dimensions
        },
        "measure": lattice.schema.measure,
        "view_rows": {
            lattice.label(view): lattice.size(view) for view in lattice.views()
        },
    }


def lattice_from_dict(document: Dict) -> CubeLattice:
    """Build a lattice from a JSON document.

    With ``view_rows`` the sizes are taken verbatim (every view must be
    present); otherwise ``raw_rows`` sizes the lattice analytically.
    """
    dimensions = document.get("dimensions")
    if not dimensions:
        raise ValueError("document needs a non-empty 'dimensions' mapping")
    schema = CubeSchema(
        [Dimension(name, int(card)) for name, card in dimensions.items()],
        measure=document.get("measure", "sales"),
    )
    view_rows = document.get("view_rows")
    if view_rows is not None:
        sizes = {}
        for label, rows in view_rows.items():
            view = parse_view(label)
            unknown = view.attrs - set(schema.names)
            if unknown:
                raise ValueError(
                    f"view {label!r} references unknown dimensions {sorted(unknown)}"
                )
            sizes[view] = _require_finite(rows, f"view_rows[{label!r}]")
        return CubeLattice(schema, sizes)
    raw_rows = document.get("raw_rows")
    if raw_rows is None:
        raise ValueError("document needs 'view_rows' or 'raw_rows'")
    return analytical_lattice(schema, _require_finite(raw_rows, "raw_rows"))


def load_lattice(path: PathLike) -> CubeLattice:
    """Read a lattice document from a JSON file."""
    with open(path) as f:
        return lattice_from_dict(json.load(f))


def save_lattice(lattice: CubeLattice, path: PathLike) -> None:
    """Write a lattice document to a JSON file."""
    with open(path, "w") as f:
        # note: no sort_keys — the dimension order in the document IS the
        # schema order, which view labels depend on.
        json.dump(lattice_to_dict(lattice), f, indent=2)
        f.write("\n")


def hierarchical_cube_from_dict(document: Dict):
    """Build a :class:`~repro.core.hierarchy.HierarchicalCube` from JSON.

    Document format::

        {
          "hierarchies": {
            "time": [["day", 365], ["month", 12], ["year", 1]],
            "p": [["p", 100]]
          },
          "raw_rows": 50000
        }

    Levels are listed finest first; a single-level list is a flat
    dimension.
    """
    from repro.core.hierarchy import HierarchicalCube, Hierarchy, Level

    hierarchies = document.get("hierarchies")
    if not hierarchies:
        raise ValueError("document needs a non-empty 'hierarchies' mapping")
    raw_rows = document.get("raw_rows")
    if raw_rows is None:
        raise ValueError("document needs 'raw_rows'")
    built = []
    for name, levels in hierarchies.items():
        if not levels:
            raise ValueError(f"hierarchy {name!r} has no levels")
        built.append(
            Hierarchy(name, [Level(str(n), int(c)) for n, c in levels])
        )
    return HierarchicalCube(
        built, raw_rows=_require_finite(raw_rows, "raw_rows")
    )


def is_hierarchical_document(document: Dict) -> bool:
    """True when the document describes a hierarchical cube."""
    return "hierarchies" in document


def is_graph_document(document: Dict) -> bool:
    """True when the document is a raw query-view graph (Section 5.1)."""
    return "queries" in document and "views" in document


def graph_to_dict(graph) -> Dict:
    """Serialize a :class:`~repro.core.qvgraph.QueryViewGraph`.

    Payloads are not serialized (they are derivable for cube graphs and
    absent for hand-built ones).
    """
    return {
        "queries": [
            {
                "name": q.name,
                "default_cost": q.default_cost,
                "frequency": q.frequency,
            }
            for q in graph.queries
        ],
        "views": [
            {
                "name": v.name,
                "space": v.space,
                "indexes": [
                    {"name": i, "space": graph.structure(i).space}
                    for i in graph.indexes_of(v.name)
                ],
            }
            for v in graph.views
        ],
        "edges": [
            {"query": q, "structure": s, "cost": cost}
            for q, s, cost in graph.edges()
        ],
    }


def graph_from_dict(document: Dict):
    """Rebuild a query-view graph from :func:`graph_to_dict` output.

    Also accepts hand-written documents — the format doubles as the
    CLI's input for arbitrary (non-cube) instances like Figure 2.
    """
    from repro.core.qvgraph import QueryViewGraph

    if not is_graph_document(document):
        raise ValueError("document needs 'queries' and 'views' lists")
    graph = QueryViewGraph()
    for q in document["queries"]:
        name = q["name"]
        graph.add_query(
            name,
            default_cost=_require_finite(
                q["default_cost"], f"queries[{name!r}].default_cost"
            ),
            frequency=_require_finite(
                q.get("frequency", 1.0), f"queries[{name!r}].frequency"
            ),
        )
    for v in document["views"]:
        name = v["name"]
        graph.add_view(
            name, space=_require_finite(v["space"], f"views[{name!r}].space")
        )
        for idx in v.get("indexes", []):
            graph.add_index(
                name,
                idx["name"],
                space=_require_finite(
                    idx["space"], f"indexes[{idx['name']!r}].space"
                )
                if "space" in idx
                else None,
            )
    for edge in document.get("edges", []):
        graph.add_edge(
            edge["query"],
            edge["structure"],
            _require_finite(
                edge["cost"],
                f"edge ({edge['query']!r}, {edge['structure']!r}).cost",
            ),
        )
    graph.validate()
    return graph


def selection_to_dict(result: SelectionResult) -> Dict:
    """Serialize a selection result (structures, stages, headline stats)."""
    return {
        "algorithm": result.algorithm,
        "interrupted": result.interrupted,
        "stop_reason": result.stop_reason,
        "space_budget": result.space_budget,
        "space_used": result.space_used,
        "initial_tau": result.initial_tau,
        "tau": result.tau,
        "benefit": result.benefit,
        "average_query_cost": result.average_query_cost,
        "selected": list(result.selected),
        "stages": [
            {
                "structures": list(stage.structures),
                "benefit": stage.benefit,
                "space": stage.space,
                "tau_after": stage.tau_after,
            }
            for stage in result.stages
        ],
    }


def save_selection(result: SelectionResult, path: PathLike) -> None:
    """Write a selection report to a JSON file."""
    with open(path, "w") as f:
        json.dump(selection_to_dict(result), f, indent=2)
        f.write("\n")


def round_trip_lattice(lattice: CubeLattice) -> CubeLattice:
    """Serialize and re-parse (used by tests; exact sizes preserved)."""
    return lattice_from_dict(lattice_to_dict(lattice))


# ----------------------------------------------------------- query logs

# One JSON object per line (JSONL) — the workload recorder's streaming
# format.  A record::
#
#     {"groupby": ["c"], "selection": ["p", "s"], "values": {"p": 3, "s": 1}}
#
# ``values`` binds every selection attribute to a concrete dimension
# value.  Attribute names are validated against the cube schema at load
# time: a record selecting on an attribute the cube does not have used
# to surface as a ``KeyError`` deep inside plan routing — now it is a
# one-line input error naming the record.


def log_entry_to_dict(entry) -> Dict:
    """Serialize a :class:`~repro.cube.query_log.LogEntry`."""
    return {
        "groupby": sorted(entry.query.groupby),
        "selection": sorted(entry.query.selection),
        "values": {attr: int(value) for attr, value in entry.values},
    }


def log_entry_from_dict(document: Dict, schema, where: str = "query-log entry"):
    """Rebuild a :class:`~repro.cube.query_log.LogEntry`, validated
    against ``schema`` (a :class:`~repro.cube.schema.CubeSchema`).

    Rejects attributes that are not cube dimensions, bound values
    outside the attribute's domain, and values that do not bind exactly
    the selection attributes — all as one-line ``ValueError``\\ s naming
    the record, so a bad log line fails at the door instead of as a
    ``KeyError`` in the middle of routing.
    """
    from repro.core.query import SliceQuery
    from repro.cube.query_log import LogEntry

    known = set(schema.names)
    groupby = list(document.get("groupby", []))
    selection = list(document.get("selection", []))
    for role, attrs in (("groupby", groupby), ("selection", selection)):
        unknown = [a for a in attrs if a not in known]
        if unknown:
            raise ValueError(
                f"{where}: {role} attribute {unknown[0]!r} is not a cube "
                f"dimension (have {', '.join(schema.names)})"
            )
    values = document.get("values", {})
    if set(values) != set(selection):
        raise ValueError(
            f"{where}: values must bind exactly the selection attributes "
            f"{sorted(selection)}, got {sorted(values)}"
        )
    bound = []
    for attr, value in values.items():
        try:
            value = int(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"{where}: value for {attr!r} must be an integer, got {value!r}"
            ) from exc
        card = schema.cardinality(attr)
        if not 0 <= value < card:
            raise ValueError(
                f"{where}: value {value} for {attr!r} is outside [0, {card})"
            )
        bound.append((attr, value))
    query = SliceQuery(groupby=groupby, selection=selection)
    return LogEntry(query=query, values=tuple(sorted(bound)))


def save_query_log(log, path: PathLike) -> None:
    """Write a query log as JSONL (one record per line)."""
    with open(path, "w") as f:
        for entry in log:
            f.write(json.dumps(log_entry_to_dict(entry), sort_keys=True))
            f.write("\n")


def iter_query_log(path: PathLike, schema):
    """Stream a JSONL query log, validating each record against ``schema``.

    Yields one :class:`~repro.cube.query_log.LogEntry` per line without
    ever holding the file in memory, so a multi-million-query log from a
    long serve run mines in O(1) RSS.  An empty file is an empty log.
    Malformed JSON or invalid records raise ``ValueError`` naming the
    offending ``file:line``, exactly like :func:`load_query_log`.
    """
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON in query log: {exc}"
                ) from exc
            yield log_entry_from_dict(document, schema, where=f"{path}:{line_no}")


def load_query_log(path: PathLike, schema) -> list:
    """Read a whole JSONL query log into a list (see :func:`iter_query_log`)."""
    return list(iter_query_log(path, schema))
