"""Measured-vs-predicted cost validation on the SQLite backend.

The paper's linear cost model predicts ``|C| / |E|`` rows per query; the
row engine's accounting realizes that number by construction.  This
module asks the harder question: does the prediction track what a *real*
database measurably does?  :func:`validate_cost` routes a workload with
the model, executes every query through both the row engine and the
SQLite mirror (asserting the answers match), measures the SQLite side —
rows behind the plan (counted by SQLite itself) and wall-clock per
statement — and reports Spearman rank correlation between predicted and
measured cost per structure class:

* ``index-prefix`` — plans that bind a usable index-key prefix,
* ``view-scan`` — full scans of a materialized view,
* ``raw`` — raw fact-table fallbacks.

Rank correlation is the right lens because the model is used *ordinally*
— the router only ever compares candidate costs — so a monotone
relationship with measured cost is exactly what "the model routes
correctly on real hardware" means.  Classes where the predictor is
constant (e.g. ``raw``, where every query predicts the full fact scan)
report ``None`` rather than a fabricated coefficient.

This is the engine behind the ``repro validate-cost`` CLI subcommand and
the ``sql_backend`` benchmark leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.costmodel import LinearCostModel
from repro.cube.query_log import LogEntry, generate_query_log
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.pipeline import materialize_selection
from repro.engine.table import FactTable
from repro.serve.structures import resolve_selection

#: Structure classes the correlation is reported over.
STRUCTURE_CLASSES = ("index-prefix", "view-scan", "raw")


def _ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation, or ``None`` when it is undefined.

    Undefined means fewer than two points or zero variance in either
    series — reporting ``None`` there is honest where a coefficient
    would be noise.  Uses :func:`scipy.stats.spearmanr` when available
    and an exact rank-Pearson fallback otherwise (identical values, no
    new dependency required).

    >>> spearman([1, 2, 3, 4], [10, 20, 30, 40])
    1.0
    >>> spearman([1, 2, 3, 4], [4, 3, 2, 1])
    -1.0
    >>> spearman([1, 1, 1], [1, 2, 3]) is None
    True
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2 or len(set(xs)) < 2 or len(set(ys)) < 2:
        return None
    try:
        from scipy.stats import spearmanr
    except ImportError:
        pass
    else:
        return float(spearmanr(xs, ys).statistic)
    rx, ry = _ranks(xs), _ranks(ys)
    n = len(rx)
    mx, my = sum(rx) / n, sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    return cov / (vx * vy) ** 0.5


@dataclass
class Observation:
    """One query's differential execution, measured on the SQLite side."""

    pattern: str
    structure_class: str
    structure: str
    predicted: float
    engine_rows: int
    sqlite_rows: int
    wall_s: float
    used_index: Optional[str]
    match: bool


def _class_report(observations: Sequence[Observation]) -> dict:
    predicted = [o.predicted for o in observations]
    measured = [float(o.sqlite_rows) for o in observations]
    walls = [o.wall_s for o in observations]
    return {
        "queries": len(observations),
        "structures": len({o.structure for o in observations}),
        "spearman_rows": spearman(predicted, measured),
        "spearman_wall": spearman(predicted, walls),
        "exact_rows": sum(1 for o in observations if o.predicted == o.sqlite_rows),
        "predicted_rows_total": float(sum(predicted)),
        "measured_rows_total": int(sum(o.sqlite_rows for o in observations)),
        "wall_s_total": float(sum(walls)),
        "sqlite_index_plans": sum(1 for o in observations if o.used_index),
    }


def validate_cost(
    fact: FactTable,
    selection: Sequence[str],
    cost_model: Optional[LinearCostModel] = None,
    entries: Optional[Sequence[LogEntry]] = None,
    n_queries: int = 300,
    rng=0,
) -> dict:
    """Differentially execute a workload and correlate cost predictions.

    Materializes ``selection`` (structure labels, e.g. ``psc`` /
    ``I_sp(ps)``) over ``fact``, mirrors the catalog into SQLite, routes
    each entry with the cost model, executes it through **both** engines
    asserting identical answers, and returns the report dict: mismatch
    count (expected 0), per-class and overall Spearman correlations, and
    the observation rows behind them.
    """
    from repro.backends.sqlite import SqliteBackend
    from repro.serve.batch import execute_raw, raw_plan

    if cost_model is None:
        cost_model = LinearCostModel.from_fact(fact)
    if entries is None:
        entries = generate_query_log(fact.schema, n_queries, rng=rng)
    views, indexes = resolve_selection(selection)
    catalog = Catalog(fact)
    materialize_selection(catalog, views, indexes)
    executor = Executor(catalog, cost_model)
    lattice = cost_model.lattice

    observations: List[Observation] = []
    mismatches: List[dict] = []
    with SqliteBackend(catalog, cost_model=cost_model) as backend:
        for entry in entries:
            query = entry.query
            bound = dict(entry.bound_values)
            try:
                view, index, predicted = executor.plan_with_cost(query)
            except LookupError:
                info = raw_plan(cost_model, query)
                engine = execute_raw(fact, entry, info)
                engine_rows, engine_groups = engine.actual_rows, engine.groups
                result = backend.execute_raw(query, bound)
                klass, structure, predicted = "raw", info.structure, info.predicted
            else:
                engine_result = executor.execute(query, bound, plan=(view, index))
                engine_rows = engine_result.rows_processed
                engine_groups = engine_result.groups
                result = backend.execute(query, bound, plan=(view, index))
                prefix = index.usable_prefix(query) if index is not None else ()
                klass = "index-prefix" if prefix else "view-scan"
                structure = (
                    lattice.index_label(index)
                    if index is not None
                    else lattice.label(view)
                )
            match = (
                engine_groups == result.groups
                and engine_rows == result.rows_processed
            )
            if not match:
                mismatches.append(
                    {
                        "query": str(query),
                        "values": bound,
                        "engine_rows": engine_rows,
                        "sqlite_rows": result.rows_processed,
                        "groups_equal": engine_groups == result.groups,
                    }
                )
            observations.append(
                Observation(
                    pattern=str(query),
                    structure_class=klass,
                    structure=structure,
                    predicted=float(predicted),
                    engine_rows=engine_rows,
                    sqlite_rows=result.rows_processed,
                    wall_s=result.wall_s,
                    used_index=result.used_index,
                    match=match,
                )
            )

    by_class: Dict[str, List[Observation]] = {}
    for observation in observations:
        by_class.setdefault(observation.structure_class, []).append(observation)
    return {
        "queries": len(observations),
        "selection": list(selection),
        "mismatches": len(mismatches),
        "mismatch_details": mismatches[:20],
        "classes": {
            klass: _class_report(by_class[klass])
            for klass in STRUCTURE_CLASSES
            if klass in by_class
        },
        "overall": _class_report(observations),
    }


def format_report(report: dict) -> str:
    """Render the validation report as the CLI's correlation table."""
    lines = [
        f"validate-cost: {report['queries']} queries, "
        f"{report['mismatches']} answer mismatches "
        f"(selection: {len(report['selection'])} structures)",
        f"{'class':<14} {'queries':>7} {'ρ(rows)':>8} {'ρ(wall)':>8} "
        f"{'exact':>6} {'idx plans':>9}",
    ]
    rows = list(report["classes"].items()) + [("overall", report["overall"])]
    for klass, stats in rows:
        def fmt(value):
            return f"{value:+.3f}" if value is not None else "   n/a"

        lines.append(
            f"{klass:<14} {stats['queries']:>7} {fmt(stats['spearman_rows']):>8} "
            f"{fmt(stats['spearman_wall']):>8} {stats['exact_rows']:>6} "
            f"{stats['sqlite_index_plans']:>9}"
        )
    return "\n".join(lines)
