"""Execution backends: run the selected structures on a real database.

The in-repo row engine (:mod:`repro.engine`) exists to count rows
processed under the paper's cost model.  This package mirrors the same
catalogs onto real engines — today SQLite, via :class:`SqliteBackend` —
so every answer the row engine produces can be cross-checked against an
independent implementation, and so the ``|C| / |E|`` model can be
validated against measured execution (wall-clock, real index usage)
rather than only against its own accounting.

* :mod:`repro.backends.sqlite` — the backend: catalog mirroring,
  ``CREATE INDEX`` for every selected B-tree/fat index, SQL execution
  with engine-identical rows-processed accounting.
* :mod:`repro.backends.validate` — the measurement pass behind
  ``repro validate-cost``: measured-vs-predicted Spearman correlation
  per structure class.
* :mod:`repro.backends.diff` — the differential harness
  (``python -m repro.backends.diff``): seeded random schemas and
  workloads replayed through both engines, asserting identical answers.
"""

from repro.backends.sqlite import BackendError, SqliteBackend, SqlResult
from repro.backends.validate import spearman, validate_cost

__all__ = [
    "BackendError",
    "SqliteBackend",
    "SqlResult",
    "spearman",
    "validate_cost",
]
