"""A SQLite execution backend for the selected structures.

The backend mirrors a :class:`~repro.engine.catalog.Catalog` into a real
SQLite database: the fact table and every materialized view become
ordinary tables (view rows are inserted exactly as the row engine
aggregated them, so the mirrored contents are bit-identical by
construction), and every selected B-tree or fat index becomes a real
``CREATE INDEX`` over its view table.  Slice queries are then answered
by SQL statements built with :func:`repro.sql.format_select` — the same
emitter behind :func:`repro.sql.to_sql` — and executed by SQLite's own
planner, which is free to (and on prefix plans does) use the created
indexes.

Result fidelity mirrors the row engine's semantics exactly:

* group keys are tuples of the groupby attributes in schema order, the
  same key shape :meth:`repro.engine.executor.Executor.execute` builds;
* an ungrouped query over zero matching rows answers ``{}`` (SQLite's
  ``SUM`` returns NULL there, which is mapped back to "no groups");
* ``rows_processed`` follows the engine's accounting — a usable index
  prefix counts the entries behind the bound prefix (computed by SQLite
  itself with ``COUNT(*)`` over the prefix predicates), a view scan
  counts the whole view, the raw fallback counts the whole fact table.

On integer-valued measures (the dense serving fixtures and the
differential harness's random facts) answers are byte-identical to the
row engine regardless of accumulation order; with arbitrary floats the
sums agree to accumulation-order rounding, which is why the differential
suite pins integral measures.

The backend also reports what SQLite *actually did*: each result carries
the ``EXPLAIN QUERY PLAN`` detail lines and the index the plan used, the
raw material for the measured-vs-predicted validation pass
(:mod:`repro.backends.validate`).
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.sql import _IDENTIFIER_RE, format_select

#: Name of the mirrored fact table.
FACT_TABLE = "fact"


class BackendError(RuntimeError):
    """Raised when a catalog cannot be mirrored or a query cannot run."""


@dataclass
class SqlResult:
    """One slice query answered by the SQLite mirror.

    Field-compatible with the row engine's
    :class:`~repro.engine.executor.QueryResult` (``query``, ``view``,
    ``index``, ``rows_processed``, ``groups``) so differential checks
    can compare the two directly, plus the SQL-side specifics: the
    statement text, the ``EXPLAIN QUERY PLAN`` detail lines, and the
    wall-clock seconds the answer query took.
    """

    query: SliceQuery
    view: Optional[View]
    index: Optional[Index]
    rows_processed: int
    groups: Dict[tuple, float]
    sql: str
    explain: Tuple[str, ...]
    wall_s: float

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def used_index(self) -> Optional[str]:
        """Name of the index SQLite's plan used, if any."""
        for detail in self.explain:
            if "USING INDEX " in detail or "USING COVERING INDEX " in detail:
                return detail.rsplit("INDEX ", 1)[1].split(" ")[0]
        return None


def view_table_name(attrs: Tuple[str, ...]) -> str:
    """The mirrored table name for a view with the given ordered attrs.

    ``("p", "s")`` → ``view_p_s``; the empty (grand-total) view is
    ``view_total``.
    """
    return "view_" + ("_".join(attrs) or "total")


def index_name(index: Index, table: str) -> str:
    """A unique SQLite index name: ``idx_<view table>__<key order>``."""
    return f"idx_{table}__{'_'.join(index.key)}"


class SqliteBackend:
    """Mirror a catalog into SQLite and answer slice queries there.

    Parameters
    ----------
    catalog:
        Loaded immediately when given; otherwise call :meth:`load` (or
        :meth:`sync`, which the serving path uses) before executing.
    cost_model:
        Used by the internal planner when :meth:`execute` is called
        without an explicit plan — pass the same model the row-engine
        executor plans with so both sides route identically.
    path:
        SQLite database path (default in-memory).
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        cost_model: Optional[LinearCostModel] = None,
        path: str = ":memory:",
    ):
        # serving may execute batches from pool threads; one coarse lock
        # serializes mirror rebuilds and statement execution, so a hot
        # swap can never race a concurrent reader on the shared handle
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        self.cost_model = cost_model
        self.catalog: Optional[Catalog] = None
        self._planner: Optional[Executor] = None
        self._token: Optional[tuple] = None
        self._view_names: Dict[View, str] = {}
        self._view_rows: Dict[View, int] = {}
        self._fact_rows = 0
        #: How many times the mirror was (re)built — lets tests assert
        #: that version bumps invalidate and no-op batches do not.
        self.reloads = 0
        if catalog is not None:
            self.load(catalog)

    # ------------------------------------------------------------- mirror

    def load(self, catalog: Catalog, generation: int = 0) -> None:
        """(Re)build the SQLite mirror of ``catalog`` from scratch.

        Drops every mirrored table, recreates the fact table and one
        table per materialized view (rows inserted in engine row order),
        and issues one ``CREATE INDEX`` per selected index.
        """
        with self._lock:
            schema = catalog.fact.schema
            names = (*schema.names, schema.measure, *catalog.fact.extra_measures)
            for name in names:
                if not _IDENTIFIER_RE.match(name):
                    raise BackendError(
                        f"cannot mirror column {name!r}: not a SQL identifier"
                    )
            if len(set(names)) != len(names):
                raise BackendError(f"column names collide: {sorted(names)}")

            conn = self._conn
            for (name,) in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            ).fetchall():
                conn.execute(f'DROP TABLE IF EXISTS "{name}"')

            fact = catalog.fact
            dim_cols = ", ".join(f"{n} INTEGER NOT NULL" for n in schema.names)
            measure_cols = ", ".join(
                f"{n} REAL NOT NULL" for n in (schema.measure, *fact.extra_measures)
            )
            conn.execute(f"CREATE TABLE {FACT_TABLE} ({dim_cols}, {measure_cols})")
            columns = [fact.columns[n].tolist() for n in schema.names]
            columns.append(fact.measures.tolist())
            columns.extend(col.tolist() for col in fact.extra_measures.values())
            placeholders = ", ".join("?" * len(columns))
            conn.executemany(
                f"INSERT INTO {FACT_TABLE} VALUES ({placeholders})", zip(*columns)
            )

            self._view_names = {}
            self._view_rows = {}
            for view in catalog.views():
                table = catalog.view_table(view)
                name = view_table_name(table.attrs)
                key_cols = ", ".join(f"{a} INTEGER NOT NULL" for a in table.attrs)
                cols = f"{key_cols}, " if key_cols else ""
                conn.execute(
                    f"CREATE TABLE {name} ({cols}{table.measure} REAL NOT NULL)"
                )
                view_columns = [table.key_columns[a].tolist() for a in table.attrs]
                view_columns.append(table.values.tolist())
                marks = ", ".join("?" * len(view_columns))
                conn.executemany(
                    f"INSERT INTO {name} VALUES ({marks})", zip(*view_columns)
                )
                self._view_names[view] = name
                self._view_rows[view] = table.n_rows

            for index in catalog.indexes():
                table_name = self._view_names[index.view]
                conn.execute(
                    f"CREATE INDEX {index_name(index, table_name)} "
                    f"ON {table_name} ({', '.join(index.key)})"
                )
            conn.commit()

            self.catalog = catalog
            self._planner = Executor(catalog, self.cost_model)
            self._fact_rows = fact.n_rows
            self._token = (generation, catalog.version)
            self.reloads += 1

    def sync(self, catalog: Catalog, generation: int = 0) -> bool:
        """Reload the mirror iff the serving data changed.

        The token is ``(generation, catalog.version)`` — the same pair
        the serving result cache tags entries with — so a hot swap (new
        generation, new catalog) and an applied fact delta (version
        bump on the same catalog) both rebuild the mirror, while steady
        batches are no-ops.  Returns whether a rebuild happened.
        """
        with self._lock:
            token = (generation, catalog.version)
            if catalog is self.catalog and token == self._token:
                return False
            self.load(catalog, generation=generation)
            return True

    def ddl(self) -> List[str]:
        """The mirror's ``CREATE`` statements, as SQLite stores them."""
        return [
            sql
            for (sql,) in self._conn.execute(
                "SELECT sql FROM sqlite_master WHERE sql IS NOT NULL"
            ).fetchall()
        ]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- execution

    def _require_loaded(self) -> Catalog:
        if self.catalog is None:
            raise BackendError("no catalog loaded; call load() first")
        return self.catalog

    def _run(self, sql: str) -> Tuple[list, Tuple[str, ...], float]:
        explain = tuple(
            str(row[-1])
            for row in self._conn.execute("EXPLAIN QUERY PLAN " + sql)
        )
        start = time.perf_counter()
        rows = self._conn.execute(sql).fetchall()
        return rows, explain, time.perf_counter() - start

    @staticmethod
    def _groups_from_rows(rows: list, n_keys: int) -> Dict[tuple, float]:
        if n_keys == 0:
            (total,) = rows[0]
            return {} if total is None else {(): float(total)}
        return {
            tuple(int(v) for v in row[:-1]): float(row[-1]) for row in rows
        }

    def execute(
        self,
        query: SliceQuery,
        selection_values: Mapping[str, int],
        plan: Optional[Tuple[View, Optional[Index]]] = None,
    ) -> SqlResult:
        """Answer a slice query from a mirrored view table.

        Mirrors :meth:`Executor.execute`: ``plan`` overrides the routing
        decision; without it the internal planner picks the cheapest
        ``(view, index)`` pair (raising ``LookupError`` when nothing
        materialized answers — callers fall back to :meth:`execute_raw`,
        exactly like the engine's serving path).
        """
        with self._lock:
            catalog = self._require_loaded()
            missing = query.selection - set(selection_values)
            if missing:
                raise ValueError(f"missing selection values for {sorted(missing)}")
            if plan is None:
                plan = self._planner.choose_plan(query)
            view, index = plan
            if not query.answerable_by(view):
                raise ValueError(f"plan view {view} cannot answer {query}")
            if index is not None and index.view != view:
                raise ValueError(f"plan index {index} is not on view {view}")

            table = catalog.view_table(view)
            table_name = self._view_names[view]
            groupby = [a for a in table.attrs if a in query.groupby]
            where = [
                (a, int(selection_values[a]))
                for a in table.attrs
                if a in query.selection
            ]
            sql = format_select(
                groupby, "sum", table.measure, table_name, where, groupby
            )
            rows, explain, wall_s = self._run(sql)
            groups = self._groups_from_rows(rows, len(groupby))

            prefix = index.usable_prefix(query) if index is not None else ()
            if prefix:
                conjunction = " AND ".join(
                    f"{a} = {int(selection_values[a])}" for a in prefix
                )
                (rows_processed,) = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table_name} WHERE {conjunction}"
                ).fetchone()
            else:
                rows_processed = self._view_rows[view]
            return SqlResult(
                query=query,
                view=view,
                index=index,
                rows_processed=int(rows_processed),
                groups=groups,
                sql=sql,
                explain=explain,
                wall_s=wall_s,
            )

    def execute_raw(
        self, query: SliceQuery, selection_values: Mapping[str, int]
    ) -> SqlResult:
        """Answer a slice query from the mirrored raw fact table.

        The fallback path: the whole fact table counts as rows
        processed, matching the engine's raw-serving accounting.
        """
        with self._lock:
            catalog = self._require_loaded()
            missing = query.selection - set(selection_values)
            if missing:
                raise ValueError(f"missing selection values for {sorted(missing)}")
            schema = catalog.fact.schema
            groupby = list(schema.sort_attrs(query.groupby))
            where = [
                (a, int(selection_values[a]))
                for a in schema.sort_attrs(query.selection)
            ]
            sql = format_select(
                groupby, "sum", schema.measure, FACT_TABLE, where, groupby
            )
            rows, explain, wall_s = self._run(sql)
            return SqlResult(
                query=query,
                view=None,
                index=None,
                rows_processed=self._fact_rows,
                groups=self._groups_from_rows(rows, len(groupby)),
                sql=sql,
                explain=explain,
                wall_s=wall_s,
            )
