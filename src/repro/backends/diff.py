"""Differential correctness harness: row engine vs SQLite.

``python -m repro.backends.diff`` generates seeded random star schemas
at d=3..5 (random cardinalities, *sparse* integer-valued facts, so
empty-result slices occur naturally and sums are order-exact), advises a
selection with the paper's greedy algorithm, mirrors the catalog into
SQLite, and replays a generated workload through **both** engines with
the same routed plan — asserting, per query, identical group dictionaries
and identical rows-processed accounting.  Raw-cube fallbacks are forced
for a slice of the workload so the fact-table path is exercised even
when the advised selection answers everything.

Each dimension count then applies a fact-table delta through
:mod:`repro.engine.maintenance` and replays again: the catalog version
bump must rebuild the SQLite mirror (the harness asserts the reload
happened) and the refreshed answers must again match.

Exit status 0 means zero mismatches anywhere — the contract the
``sql-backend-smoke`` CI job enforces.
"""

from __future__ import annotations

import argparse
import json
import string
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import FIT_STRICT, RGreedy
from repro.backends.sqlite import SqliteBackend
from repro.core.costmodel import LinearCostModel
from repro.core.qvgraph import QueryViewGraph
from repro.cube.query_log import LogEntry, generate_query_log
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.maintenance import apply_delta
from repro.engine.pipeline import materialize_selection
from repro.engine.table import FactTable
from repro.serve.batch import execute_raw, raw_plan
from repro.serve.structures import resolve_selection


def random_schema(n_dims: int, rng: np.random.Generator) -> CubeSchema:
    """A random star schema: distinct letter attrs, cardinalities 2..7."""
    names = list(string.ascii_lowercase[:n_dims])
    return CubeSchema(
        [Dimension(name, int(rng.integers(2, 8))) for name in names],
        measure="sales",
    )


def random_fact(
    schema: CubeSchema, rng: np.random.Generator, density: float = 0.6
) -> FactTable:
    """A sparse fact table with integer-valued float64 measures.

    Sparse (``density`` of the dense cell count, with duplicate rows
    allowed) so bound slices can miss every row — the empty-result edge
    the differential suite must cover.  Integer measures make every sum
    order-exact, so engine-vs-SQLite comparisons are byte-identical
    rather than accumulation-order-dependent.
    """
    n_rows = max(1, int(density * schema.dense_cells))
    columns = {
        name: rng.integers(0, schema.cardinality(name), size=n_rows)
        for name in schema.names
    }
    measures = rng.integers(0, 1000, size=n_rows).astype(np.float64)
    return FactTable(schema, columns, measures)


def advise_selection(fact: FactTable, model: LinearCostModel) -> tuple:
    """The paper's r=1 greedy selection at 3x the raw-cube space."""
    lattice = model.lattice
    graph = QueryViewGraph.from_cube(lattice)
    top_label = lattice.label(lattice.top)
    result = RGreedy(1, fit=FIT_STRICT).run(
        graph, 3.0 * lattice.size(lattice.top), seed=(top_label,)
    )
    return tuple(result.selected)


def replay_both(
    executor: Executor,
    backend: SqliteBackend,
    fact: FactTable,
    cost_model: LinearCostModel,
    entries: Sequence[LogEntry],
    force_raw_every: int = 0,
) -> dict:
    """Replay a log through both engines; return match accounting.

    ``force_raw_every`` > 0 additionally answers every n-th entry
    through both raw paths (engine fact scan vs SQLite ``fact`` table),
    so the fallback path is differentially exercised even when the
    selection answers the whole workload.
    """
    counts: Dict[str, int] = {
        "queries": 0,
        "mismatches": 0,
        "prefix": 0,
        "scan": 0,
        "raw": 0,
        "empty_results": 0,
    }
    details: List[dict] = []

    def compare(engine_rows, engine_groups, result, entry):
        counts["queries"] += 1
        if not engine_groups:
            counts["empty_results"] += 1
        if engine_groups != result.groups or engine_rows != result.rows_processed:
            counts["mismatches"] += 1
            if len(details) < 10:
                details.append(
                    {
                        "query": str(entry.query),
                        "values": dict(entry.bound_values),
                        "engine_rows": engine_rows,
                        "sqlite_rows": result.rows_processed,
                        "groups_equal": engine_groups == result.groups,
                        "sql": result.sql,
                    }
                )

    for position, entry in enumerate(entries):
        query = entry.query
        bound = dict(entry.bound_values)
        try:
            plan = executor.choose_plan(query)
        except LookupError:
            plan = None
        if plan is None:
            raw = execute_raw(fact, entry, raw_plan(cost_model, query))
            compare(raw.actual_rows, raw.groups, backend.execute_raw(query, bound), entry)
            counts["raw"] += 1
        else:
            engine = executor.execute(query, bound, plan=plan)
            compare(
                engine.rows_processed,
                engine.groups,
                backend.execute(query, bound, plan=plan),
                entry,
            )
            view, index = plan
            prefix = index.usable_prefix(query) if index is not None else ()
            counts["prefix" if prefix else "scan"] += 1
        if force_raw_every and position % force_raw_every == 0:
            raw = execute_raw(fact, entry, raw_plan(cost_model, query))
            compare(raw.actual_rows, raw.groups, backend.execute_raw(query, bound), entry)
            counts["raw"] += 1
    counts["mismatch_details"] = details
    return counts


def run_diff(
    dims: Sequence[int] = (3, 4, 5),
    queries: int = 200,
    seed: int = 0,
    density: float = 0.6,
) -> dict:
    """The full differential matrix; returns the harness report."""
    runs = []
    for n_dims in dims:
        start = time.perf_counter()
        rng = np.random.default_rng(seed * 1000 + n_dims)
        schema = random_schema(n_dims, rng)
        fact = random_fact(schema, rng, density=density)
        model = LinearCostModel.from_fact(fact)
        selection = advise_selection(fact, model)
        views, indexes = resolve_selection(selection)
        catalog = Catalog(fact)
        materialize_selection(catalog, views, indexes)
        executor = Executor(catalog, model)

        with SqliteBackend(cost_model=model) as backend:
            backend.sync(catalog)
            log = generate_query_log(schema, queries, rng=rng)
            before = replay_both(
                executor, backend, fact, model, log, force_raw_every=10
            )

            # the maintenance leg: a delta bumps catalog.version, which
            # must rebuild the mirror before the replay sees fresh rows
            n_delta = max(1, fact.n_rows // 10)
            delta_columns = {
                name: rng.integers(0, schema.cardinality(name), size=n_delta)
                for name in schema.names
            }
            delta_measures = rng.integers(0, 1000, size=n_delta).astype(np.float64)
            apply_delta(catalog, delta_columns, delta_measures)
            fact = catalog.fact
            executor = Executor(catalog, model)
            reloaded = backend.sync(catalog)
            after = replay_both(
                executor, backend, fact, model, log[: queries // 2],
                force_raw_every=10,
            )

        runs.append(
            {
                "dims": n_dims,
                "cardinalities": [d.cardinality for d in schema.dimensions],
                "fact_rows": int(fact.n_rows),
                "selection": list(selection),
                "before_delta": before,
                "delta_rows": int(n_delta),
                "mirror_reloaded_after_delta": bool(reloaded),
                "after_delta": after,
                "seconds": time.perf_counter() - start,
            }
        )

    total = {
        key: sum(run[phase][key] for run in runs for phase in ("before_delta", "after_delta"))
        for key in ("queries", "mismatches", "prefix", "scan", "raw", "empty_results")
    }
    return {
        "seed": seed,
        "dims": list(dims),
        "queries_per_dim": queries,
        "total": total,
        "reload_failures": sum(
            0 if run["mirror_reloaded_after_delta"] else 1 for run in runs
        ),
        "runs": runs,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backends.diff",
        description="replay seeded random workloads through the row engine "
        "and SQLite, asserting identical answers",
    )
    parser.add_argument(
        "--dims",
        default="3,4,5",
        help="comma-separated dimension counts (default: 3,4,5)",
    )
    parser.add_argument(
        "--queries", type=int, default=200, help="workload size per dim"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--density",
        type=float,
        default=0.6,
        help="fact rows as a fraction of dense cells (default: 0.6)",
    )
    parser.add_argument("--output", help="write the JSON report here")
    args = parser.parse_args(argv)

    dims = [int(part) for part in args.dims.split(",") if part.strip()]
    report = run_diff(
        dims=dims, queries=args.queries, seed=args.seed, density=args.density
    )
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2)

    total = report["total"]
    for run in report["runs"]:
        print(
            f"d={run['dims']}: {run['before_delta']['queries']} queries + "
            f"{run['after_delta']['queries']} post-delta, "
            f"{run['before_delta']['mismatches'] + run['after_delta']['mismatches']} "
            f"mismatches, {run['before_delta']['empty_results']} empty results, "
            f"reload={run['mirror_reloaded_after_delta']} "
            f"({run['seconds']:.1f}s)"
        )
    print(
        f"total: {total['queries']} differential executions "
        f"({total['prefix']} prefix / {total['scan']} scan / {total['raw']} raw), "
        f"{total['empty_results']} empty results, {total['mismatches']} mismatches"
    )
    if total["mismatches"] or report["reload_failures"]:
        print("DIFFERENTIAL FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
