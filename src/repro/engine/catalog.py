"""The engine catalog: which views and indexes are materialized.

A :class:`Catalog` owns the physical structures — :class:`ViewTable`\\ s
and B+tree indexes — and reports their sizes in rows, matching the space
accounting the selection algorithms use (index size = view size, Section
4.2.2; the B+tree's leaf-entry count makes that literal here).
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.core.index import Index
from repro.core.view import View
from repro.engine.btree import BPlusTree
from repro.engine.table import FactTable, ViewTable
from repro.engine.materialize import materialize_view


class Catalog:
    """Materialized views and indexes, with row-count space accounting."""

    def __init__(self, fact: FactTable):
        self.fact = fact
        self._views: Dict[View, ViewTable] = {}
        self._indexes: Dict[Index, BPlusTree] = {}
        #: Bumped by every maintenance delta (see
        #: :func:`repro.engine.maintenance.apply_delta`); the serving
        #: result cache tags entries with it so refreshed data is never
        #: served from a stale cached answer.
        self.version = 0

    # ----------------------------------------------------------------- add

    def materialize(self, view: View, agg: str = "sum") -> ViewTable:
        """Materialize a view from the raw data (idempotent)."""
        if view in self._views:
            return self._views[view]
        table = materialize_view(self.fact, view, agg)
        self._views[view] = table
        return table

    def add_view(self, table: ViewTable) -> None:
        """Register an externally computed view table."""
        self._views[table.view] = table

    def build_index(self, index: Index, order: int = 32) -> BPlusTree:
        """Build a B+tree for the index (its view must be materialized).

        The tree key is the index's search-key attribute values, suffixed
        with the row id so duplicate key prefixes stay unique; the value
        is the aggregated measure of the row.
        """
        if index in self._indexes:
            return self._indexes[index]
        table = self._views.get(index.view)
        if table is None:
            raise ValueError(
                f"cannot index {index}: view {index.view} is not materialized"
            )
        key_cols = [table.key_columns[a] for a in index.key]
        entries = sorted(
            (
                tuple(int(col[row]) for col in key_cols) + (row,),
                (row, float(table.values[row])),
            )
            for row in range(table.n_rows)
        )
        tree = BPlusTree.bulk_load(entries, order=order)
        self._indexes[index] = tree
        return tree

    # -------------------------------------------------------------- lookup

    def has_view(self, view: View) -> bool:
        return view in self._views

    def has_index(self, index: Index) -> bool:
        return index in self._indexes

    def view_table(self, view: View) -> ViewTable:
        return self._views[view]

    def drop_index(self, index: Index) -> None:
        """Forget a built index (e.g. before a rebuild)."""
        self._indexes.pop(index, None)

    def index_tree(self, index: Index) -> BPlusTree:
        return self._indexes[index]

    def views(self) -> Iterator[View]:
        return iter(self._views)

    def indexes(self) -> Iterator[Index]:
        return iter(self._indexes)

    def indexes_on(self, view: View) -> list:
        return [idx for idx in self._indexes if idx.view == view]

    # ---------------------------------------------------------------- size

    def view_rows(self, view: View) -> int:
        return self._views[view].n_rows

    def index_rows(self, index: Index) -> int:
        """Leaf entries of the index — equals the view's rows, the paper's
        index-size model made physical."""
        return len(self._indexes[index])

    def total_rows(self) -> int:
        """Total space used, in rows (views + index leaf entries)."""
        views = sum(t.n_rows for t in self._views.values())
        indexes = sum(len(t) for t in self._indexes.values())
        return views + indexes

    def stats(self) -> Dict[str, int]:
        """Structure and row counts, for serving telemetry headers."""
        return {
            "views": len(self._views),
            "indexes": len(self._indexes),
            "rows": self.total_rows(),
            "fact_rows": self.fact.n_rows,
        }

    def __repr__(self) -> str:
        return (
            f"Catalog(views={len(self._views)}, indexes={len(self._indexes)}, "
            f"rows={self.total_rows()})"
        )
