"""Executing slice queries against materialized views and indexes.

The executor answers a concrete slice query (attribute values supplied for
every selection attribute) from the catalog, counting the **rows
processed** — the paper's cost measure.  A plan is a ``(view, index)``
pair; with an index whose key has a usable prefix, only the B+tree entries
matching the prefix values are touched; otherwise the whole view table is
scanned.

This makes the linear cost model falsifiable: the expected number of rows
an index plan touches is ``|V| / |E|`` where ``|E|`` is the number of
distinct prefix combinations, which is exactly ``c(Q, V, J)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index
from repro.core.query import SliceQuery
from repro.core.view import View
from repro.engine.catalog import Catalog


@dataclass(frozen=True)
class PlanChoice:
    """One candidate plan considered by the planner."""

    view: View
    index: Optional[Index]
    usable_prefix: tuple
    estimated_cost: float

    def __str__(self) -> str:
        via = str(self.index) if self.index is not None else f"scan {self.view}"
        return f"{via}: ~{self.estimated_cost:g} rows"


@dataclass
class QueryResult:
    """Result of executing one slice query."""

    query: SliceQuery
    view: View
    index: Optional[Index]
    rows_processed: int
    groups: Dict[tuple, float] = field(default_factory=dict)

    @property
    def n_groups(self) -> int:
        return len(self.groups)


class Executor:
    """Answers slice queries from a :class:`Catalog`.

    Parameters
    ----------
    catalog:
        The materialized views and indexes.
    cost_model:
        Optional :class:`LinearCostModel` used by :meth:`choose_plan`.
        Without it, plans are chosen from the *actual* table statistics
        (view row counts and distinct prefix counts), which the catalog
        can always supply.
    """

    def __init__(self, catalog: Catalog, cost_model: Optional[LinearCostModel] = None):
        self.catalog = catalog
        self.cost_model = cost_model
        self._distinct_cache: Dict[Tuple[View, tuple], int] = {}

    # ------------------------------------------------------------ planning

    def _estimated_cost(self, query: SliceQuery, view: View,
                        index: Optional[Index]) -> float:
        if self.cost_model is not None:
            return self.cost_model.cost(query, view, index)
        table = self.catalog.view_table(view)
        if index is None:
            return float(table.n_rows)
        prefix = index.usable_prefix(query)
        if not prefix:
            return float(table.n_rows)
        cache_key = (view, prefix)
        if cache_key not in self._distinct_cache:
            self._distinct_cache[cache_key] = self.catalog.fact.distinct_count(prefix)
        distinct = self._distinct_cache[cache_key]
        return max(1.0, table.n_rows / max(1, distinct))

    def explain(self, query: SliceQuery) -> list:
        """All candidate plans for the query with their estimated costs.

        Returns ``PlanChoice`` records sorted cheapest-first; the head is
        what :meth:`choose_plan` would pick.  Useful for understanding
        why a plan won (and for asserting planner behaviour in tests).
        """
        choices = []
        for view in self.catalog.views():
            if not query.answerable_by(view):
                continue
            for index in [None] + self.catalog.indexes_on(view):
                prefix = index.usable_prefix(query) if index is not None else ()
                choices.append(
                    PlanChoice(
                        view=view,
                        index=index,
                        usable_prefix=prefix,
                        estimated_cost=self._estimated_cost(query, view, index),
                    )
                )
        choices.sort(key=lambda c: (c.estimated_cost, c.index is not None))
        return choices

    def choose_plan(self, query: SliceQuery) -> Tuple[View, Optional[Index]]:
        """Cheapest ``(view, index)`` plan among materialized structures.

        Raises ``LookupError`` if no materialized view can answer the
        query (the caller falls back to raw data).
        """
        view, index, _cost = self.plan_with_cost(query)
        return view, index

    def plan_with_cost(
        self, query: SliceQuery
    ) -> Tuple[View, Optional[Index], float]:
        """Like :meth:`choose_plan`, plus the winning plan's estimated
        cost — the prediction the serving telemetry compares against the
        rows actually processed, from the same model the router used.

        Raises ``LookupError`` if no materialized view can answer the
        query (the caller falls back to raw data).
        """
        best: Optional[Tuple[View, Optional[Index]]] = None
        best_cost = float("inf")
        for view in self.catalog.views():
            if not query.answerable_by(view):
                continue
            candidates = [None] + self.catalog.indexes_on(view)
            for index in candidates:
                cost = self._estimated_cost(query, view, index)
                if cost < best_cost:
                    best_cost = cost
                    best = (view, index)
        if best is None:
            raise LookupError(f"no materialized view answers {query}")
        return best[0], best[1], best_cost

    # ----------------------------------------------------------- execution

    def execute(
        self,
        query: SliceQuery,
        selection_values: Mapping[str, int],
        plan: Optional[Tuple[View, Optional[Index]]] = None,
        measure: Optional[str] = None,
    ) -> QueryResult:
        """Run the query with the given concrete selection values.

        ``selection_values`` must provide a value for every selection
        attribute of the query.  ``plan`` overrides plan choice (useful
        for measuring a specific view/index combination).  ``measure``
        picks which measure column to aggregate (default: the view's
        primary measure).
        """
        missing = query.selection - set(selection_values)
        if missing:
            raise ValueError(f"missing selection values for {sorted(missing)}")
        if plan is None:
            plan = self.choose_plan(query)
        view, index = plan
        if not query.answerable_by(view):
            raise ValueError(f"plan view {view} cannot answer {query}")
        if index is not None and index.view != view:
            raise ValueError(f"plan index {index} is not on view {view}")

        table = self.catalog.view_table(view)
        value_column = table.values_for(measure)
        groupby = tuple(a for a in table.attrs if a in query.groupby)
        residual = [a for a in table.attrs if a in query.selection]

        groups: Dict[tuple, float] = {}
        rows_processed = 0

        prefix = index.usable_prefix(query) if index is not None else ()
        if index is not None and prefix:
            tree = self.catalog.index_tree(index)
            prefix_key = tuple(int(selection_values[a]) for a in prefix)
            residual = [a for a in residual if a not in prefix]
            for __, (row, __value) in tree.prefix_scan(prefix_key):
                rows_processed += 1
                if any(
                    int(table.key_columns[a][row]) != int(selection_values[a])
                    for a in residual
                ):
                    continue
                key = table.row_key(row, groupby)
                groups[key] = groups.get(key, 0.0) + float(value_column[row])
        else:
            # full scan of the view table
            rows_processed = table.n_rows
            cols = {a: table.key_columns[a] for a in table.attrs}
            for row in range(table.n_rows):
                if any(
                    int(cols[a][row]) != int(selection_values[a]) for a in residual
                ):
                    continue
                key = tuple(int(cols[a][row]) for a in groupby)
                groups[key] = groups.get(key, 0.0) + float(value_column[row])

        return QueryResult(
            query=query,
            view=view,
            index=index,
            rows_processed=rows_processed,
            groups=groups,
        )
