"""OLAP navigation: drill-down, roll-up, slice, and dice.

The interactive operations an analyst performs on a cube, expressed as
transformations on :class:`~repro.core.query.SliceQuery` and executed
through the engine's planner.  Each helper returns the executor's
:class:`~repro.engine.executor.QueryResult`, so the rows-processed
accounting (and therefore the value of the selected views/indexes) is
visible at every navigation step.

* **drill down** — add a dimension to the group-by (finer grain);
* **roll up** — remove a group-by dimension (coarser grain);
* **slice** — fix one more dimension to a value (moves it into the
  selection);
* **dice** — replace the bound value of an already-sliced dimension.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.core.query import SliceQuery
from repro.engine.executor import Executor, QueryResult


class NavigationError(ValueError):
    """Raised when a navigation step is not applicable."""


def _check_dim(executor: Executor, dim: str) -> None:
    if dim not in executor.catalog.fact.schema.names:
        raise NavigationError(f"unknown dimension {dim!r}")


def drill_down(
    executor: Executor,
    query: SliceQuery,
    values: Mapping[str, int],
    dim: str,
) -> Tuple[SliceQuery, QueryResult]:
    """Add ``dim`` to the group-by and execute the refined query."""
    _check_dim(executor, dim)
    if dim in query.groupby:
        raise NavigationError(f"{dim!r} is already a group-by dimension")
    if dim in query.selection:
        raise NavigationError(
            f"{dim!r} is sliced; un-slice it first (roll_up the selection)"
        )
    refined = SliceQuery(
        groupby=query.groupby | {dim}, selection=query.selection
    )
    return refined, executor.execute(refined, values)


def roll_up(
    executor: Executor,
    query: SliceQuery,
    values: Mapping[str, int],
    dim: str,
) -> Tuple[SliceQuery, QueryResult]:
    """Remove ``dim`` from the group-by (or drop its slice) and execute."""
    _check_dim(executor, dim)
    if dim in query.groupby:
        coarser = SliceQuery(
            groupby=query.groupby - {dim}, selection=query.selection
        )
        return coarser, executor.execute(coarser, values)
    if dim in query.selection:
        remaining = {a: v for a, v in values.items() if a != dim}
        coarser = SliceQuery(
            groupby=query.groupby, selection=query.selection - {dim}
        )
        return coarser, executor.execute(coarser, remaining)
    raise NavigationError(f"{dim!r} does not appear in the query")


def slice_(
    executor: Executor,
    query: SliceQuery,
    values: Mapping[str, int],
    dim: str,
    value: int,
) -> Tuple[SliceQuery, QueryResult]:
    """Fix ``dim = value``: move the dimension into the selection."""
    _check_dim(executor, dim)
    if dim in query.selection:
        raise NavigationError(f"{dim!r} is already sliced; use dice()")
    sliced = SliceQuery(
        groupby=query.groupby - {dim}, selection=query.selection | {dim}
    )
    bound: Dict[str, int] = dict(values)
    bound[dim] = int(value)
    return sliced, executor.execute(sliced, bound)


def dice(
    executor: Executor,
    query: SliceQuery,
    values: Mapping[str, int],
    dim: str,
    value: int,
) -> Tuple[SliceQuery, QueryResult]:
    """Rebind an already-sliced dimension to a different value."""
    _check_dim(executor, dim)
    if dim not in query.selection:
        raise NavigationError(f"{dim!r} is not sliced; use slice_()")
    bound = dict(values)
    bound[dim] = int(value)
    return query, executor.execute(query, bound)
