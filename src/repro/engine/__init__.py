"""Mini-ROLAP execution engine: tables, B+trees, materializer, executor."""

from repro.engine.btree import BPlusTree
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor, PlanChoice, QueryResult
from repro.engine.maintenance import (
    RefreshReport,
    apply_delta,
    estimate_refresh_cost,
    merge_view_tables,
)
from repro.engine.materialize import materialize_view, rollup_view
from repro.engine.storage import load_catalog, save_catalog
from repro.engine.pipeline import (
    LoadReport,
    load_cost_estimate,
    materialize_selection,
    naive_load_cost,
)
from repro.engine.table import FactTable, ViewTable

__all__ = [
    "BPlusTree",
    "Catalog",
    "Executor",
    "FactTable",
    "LoadReport",
    "PlanChoice",
    "QueryResult",
    "RefreshReport",
    "ViewTable",
    "apply_delta",
    "estimate_refresh_cost",
    "load_catalog",
    "load_cost_estimate",
    "materialize_selection",
    "materialize_view",
    "merge_view_tables",
    "naive_load_cost",
    "rollup_view",
    "save_catalog",
]
