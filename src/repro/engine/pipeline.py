"""Lattice-aware materialization: computing a selection at load time.

Materializing every selected view straight from the raw data scans the
fact table once per view.  The dependence lattice (Section 3.4) does
better: compute each view from its *smallest already-materialized
ancestor* — rolling ``p`` up from ``ps`` (0.8M rows) instead of from
``psc`` (6M rows).  This is the load-time counterpart of the paper's
space accounting ("there is not enough space (or equivalently load
time)", Example 2.1).

:func:`materialize_selection` topologically orders the requested views
(ancestors first), picks the cheapest available source for each, builds
the requested indexes, and returns a :class:`LoadReport` with the rows
processed — comparable against :func:`naive_load_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.index import Index
from repro.core.view import View
from repro.engine.catalog import Catalog
from repro.engine.materialize import materialize_view, rollup_view


@dataclass
class LoadStep:
    """One materialization step: which source fed which view."""

    view: View
    source: Optional[View]  # None = computed from the raw fact table
    rows_scanned: int
    rows_produced: int


@dataclass
class LoadReport:
    """Everything the load pipeline did, with row accounting."""

    steps: List[LoadStep] = field(default_factory=list)
    index_entries_built: int = 0
    indexes_built: Tuple[str, ...] = ()

    @property
    def rows_scanned(self) -> int:
        """Total rows read while computing the views (the load cost)."""
        return sum(step.rows_scanned for step in self.steps)

    @property
    def total_cost(self) -> int:
        """Rows scanned plus index entries written."""
        return self.rows_scanned + self.index_entries_built

    def source_of(self, view: View) -> Optional[View]:
        for step in self.steps:
            if step.view == view:
                return step.source
        raise KeyError(f"{view} was not materialized by this load")


def materialize_selection(
    catalog: Catalog,
    views: Iterable[View],
    indexes: Iterable[Index] = (),
    agg: str = "sum",
    on_step: Optional[Callable[[LoadReport, Optional[LoadStep]], None]] = None,
    resume_from: Optional[LoadReport] = None,
    workers: Optional[int] = None,
) -> LoadReport:
    """Materialize views (ancestors first, rolled up from the smallest
    available source) and build indexes on them.

    Views already present in the catalog are reused as sources but not
    recomputed.  Index views must be in ``views`` or already
    materialized.

    ``on_step`` is invoked after every completed unit of work —
    ``(report, step)`` for a view, ``(report, None)`` for an index — so
    callers can checkpoint the load; an exception it raises aborts the
    load *between* units, never mid-build.  ``resume_from`` seeds the
    report with a prior partial run's accounting: its steps carry over
    (those views are already in the catalog, so they are skipped, not
    recomputed) and its indexes are neither rebuilt nor recounted, so a
    resumed load's row accounting matches an uninterrupted one.

    ``workers`` builds independent views of one dependence wave in a
    process pool (``None`` follows ``REPRO_WORKERS``, ``0`` auto-sizes,
    ``N >= 2`` forces a pool).  Waves are contiguous runs of the serial
    order in which no member can compute another, so every view reads
    the same source — the report is identical to a serial load, steps,
    order and all.
    """
    requested = list(dict.fromkeys(views))  # stable de-dup
    indexes = list(indexes)
    for index in indexes:
        if index.view not in requested and not catalog.has_view(index.view):
            raise ValueError(
                f"index {index} targets {index.view}, which is neither "
                "requested nor materialized"
            )

    report = LoadReport()
    done_indexes = set()
    if resume_from is not None:
        report.steps.extend(resume_from.steps)
        report.index_entries_built = resume_from.index_entries_built
        report.indexes_built = tuple(resume_from.indexes_built)
        done_indexes = set(resume_from.indexes_built)

    from repro.parallel import resolve_workers

    worker_count, __forced = resolve_workers(workers)

    # ancestors first: more attributes = potential source for the rest
    order = sorted(requested, key=lambda v: (-len(v), v.key))
    if worker_count > 1:
        _materialize_waves(catalog, order, agg, report, on_step, worker_count)
    else:
        for view in order:
            if catalog.has_view(view):
                continue
            source = _cheapest_source(catalog, view)
            if source is None:
                table = materialize_view(catalog.fact, view, agg)
                scanned = catalog.fact.n_rows
            else:
                source_table = catalog.view_table(source)
                table = rollup_view(
                    source_table, view, agg, schema=catalog.fact.schema
                )
                scanned = source_table.n_rows
            catalog.add_view(table)
            step = LoadStep(
                view=view,
                source=source,
                rows_scanned=scanned,
                rows_produced=table.n_rows,
            )
            report.steps.append(step)
            if on_step is not None:
                on_step(report, step)

    for index in indexes:
        name = str(index)
        if name in done_indexes:
            continue
        tree = catalog.build_index(index)
        report.index_entries_built += len(tree)
        report.indexes_built = report.indexes_built + (name,)
        if on_step is not None:
            on_step(report, None)
    return report


def _raw_task(fact, view: View, agg: str):
    return materialize_view(fact, view, agg)


def _rollup_task(source_table, view: View, agg: str, schema):
    return rollup_view(source_table, view, agg, schema=schema)


def _materialize_waves(
    catalog: Catalog,
    order: Sequence[View],
    agg: str,
    report: LoadReport,
    on_step,
    workers: int,
) -> None:
    """Build the fresh views of ``order`` wave by wave in a process pool.

    A wave is the longest prefix of the remaining serial order in which
    no member can compute another, so (a) every member's cheapest source
    is already in the catalog when the wave starts — the same source the
    serial loop would pick — and (b) steps land in the report, and
    ``on_step`` fires, in the exact serial order.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    pending = [view for view in order if not catalog.has_view(view)]
    if not pending:
        return
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        position = 0
        while position < len(pending):
            wave = [pending[position]]
            for view in pending[position + 1 :]:
                if any(member.can_compute(view) for member in wave):
                    break
                wave.append(view)
            submitted = []
            for view in wave:
                source = _cheapest_source(catalog, view)
                if source is None:
                    scanned = catalog.fact.n_rows
                    future = pool.submit(_raw_task, catalog.fact, view, agg)
                else:
                    source_table = catalog.view_table(source)
                    scanned = source_table.n_rows
                    future = pool.submit(
                        _rollup_task, source_table, view, agg,
                        catalog.fact.schema,
                    )
                submitted.append((view, source, scanned, future))
            for view, source, scanned, future in submitted:
                table = future.result()
                catalog.add_view(table)
                step = LoadStep(
                    view=view,
                    source=source,
                    rows_scanned=scanned,
                    rows_produced=table.n_rows,
                )
                report.steps.append(step)
                if on_step is not None:
                    on_step(report, step)
            position += len(wave)


def _cheapest_source(catalog: Catalog, view: View) -> Optional[View]:
    """Smallest materialized strict ancestor of ``view`` (or None).

    A view never has more rows than the raw data, so any ancestor is at
    least as cheap a source as the fact table.
    """
    best: Optional[View] = None
    best_rows: Optional[int] = None
    for candidate in catalog.views():
        if candidate == view or not candidate.can_compute(view):
            continue
        rows = catalog.view_rows(candidate)
        if best_rows is None or rows < best_rows:
            best = candidate
            best_rows = rows
    return best


def naive_load_cost(catalog: Catalog, views: Sequence[View]) -> int:
    """Rows scanned if every view were computed from the raw data."""
    fresh = [v for v in dict.fromkeys(views) if not catalog.has_view(v)]
    return catalog.fact.n_rows * len(fresh)


def load_cost_estimate(
    sizes: Dict[View, float],
    views: Sequence[View],
    raw_rows: float,
) -> float:
    """Analytical pipeline load cost from view sizes alone.

    Mirrors the pipeline's greedy choice: each view reads its smallest
    requested strict ancestor (or the raw data).  Usable at advising time
    before anything is materialized.
    """
    requested = sorted(dict.fromkeys(views), key=lambda v: (-len(v), v.key))
    cost = 0.0
    available: List[View] = []
    for view in requested:
        sources = [a for a in available if a.can_compute(view) and a != view]
        if sources:
            cost += min(sizes[a] for a in sources)
        else:
            cost += raw_rows
        available.append(view)
    return cost
