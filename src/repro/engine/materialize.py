"""Materializing subcubes: the GROUP BY aggregation of Section 3.1.

``materialize_view`` computes, for a view ``G1,...,Gk``, the SQL

    SELECT G1, ..., Gk, SUM(measure) FROM fact GROUP BY G1, ..., Gk;

result as a :class:`~repro.engine.table.ViewTable`.  Views can also be
derived from an ancestor view instead of the raw data (the dependence
relation ``⪯``), which is how real ROLAP loaders exploit the lattice.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.view import View
from repro.engine.table import FactTable, ViewTable

_AGGREGATES = ("sum", "count", "min", "max")


def _group_keys(key_cols: Tuple[np.ndarray, ...]):
    """Group rows on the key columns.

    Returns ``(unique_cols, inverse, n_groups)``; for the empty key the
    single grand-total group with ``inverse=None``.
    """
    if not key_cols:
        return (), None, 1
    stacked = np.stack(key_cols, axis=1)
    unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
    unique_cols = tuple(unique[:, i] for i in range(unique.shape[1]))
    return unique_cols, inverse, unique.shape[0]


def _aggregate(inverse, n_groups: int, values: np.ndarray, agg: str) -> np.ndarray:
    """Per-group aggregate of ``values`` for a grouping from ``_group_keys``."""
    if agg not in _AGGREGATES:
        raise ValueError(f"agg must be one of {_AGGREGATES}, got {agg!r}")
    if inverse is None:  # grand total
        if agg == "sum":
            total = values.sum()
        elif agg == "count":
            total = float(len(values))
        elif agg == "min":
            total = values.min() if len(values) else 0.0
        else:
            total = values.max() if len(values) else 0.0
        return np.array([total], dtype=np.float64)
    if agg == "sum":
        return np.bincount(inverse, weights=values, minlength=n_groups)
    if agg == "count":
        return np.bincount(inverse, minlength=n_groups).astype(np.float64)
    if agg == "min":
        out = np.full(n_groups, np.inf)
        np.minimum.at(out, inverse, values)
        return out
    out = np.full(n_groups, -np.inf)
    np.maximum.at(out, inverse, values)
    return out


def _group_aggregate(
    key_cols: Tuple[np.ndarray, ...],
    values: np.ndarray,
    agg: str,
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
    """Group rows on the key columns and aggregate one value column."""
    unique_cols, inverse, n_groups = _group_keys(key_cols)
    return unique_cols, _aggregate(inverse, n_groups, values, agg)


def materialize_view(
    fact: FactTable,
    view: View,
    agg: str = "sum",
) -> ViewTable:
    """Aggregate the raw fact table into the given view.

    Every measure of the fact table (primary and extras) is aggregated
    in the same grouping pass.  The result is sorted lexicographically
    by key (a by-product of ``np.unique``), with key columns in schema
    order.
    """
    attrs = fact.schema.sort_attrs(view.attrs)
    key_cols = tuple(fact.column(a) for a in attrs)
    unique_cols, inverse, n_groups = _group_keys(key_cols)
    values = _aggregate(inverse, n_groups, fact.measures, agg)
    extra_values = {
        name: _aggregate(inverse, n_groups, column, agg)
        for name, column in fact.extra_measures.items()
    }
    key_columns = {a: col for a, col in zip(attrs, unique_cols)}
    return ViewTable(
        view,
        attrs,
        key_columns,
        values,
        agg=agg,
        extra_values=extra_values,
        measure=fact.schema.measure,
    )


def rollup_view(
    parent: ViewTable,
    view: View,
    agg: str = "sum",
    schema=None,
) -> ViewTable:
    """Compute a view from an ancestor view (the lattice shortcut).

    Only additive aggregates roll up correctly (``sum``/``count``/``min``/
    ``max`` of sums behaves like the raw computation for ``sum``; ``count``
    here means "sum of child counts" and is handled as a sum).

    Raises ``ValueError`` unless ``view ⊆ parent.view``.
    """
    if not view.attrs <= parent.view.attrs:
        raise ValueError(f"{view} is not computable from {parent.view}")
    if agg == "count":
        agg = "sum"  # counts roll up additively
    order = schema.sort_attrs(view.attrs) if schema is not None else tuple(
        a for a in parent.attrs if a in view.attrs
    )
    key_cols = tuple(parent.key_columns[a] for a in order)
    unique_cols, inverse, n_groups = _group_keys(key_cols)
    values = _aggregate(inverse, n_groups, parent.values, agg)
    extra_values = {
        name: _aggregate(inverse, n_groups, column, agg)
        for name, column in parent.extra_values.items()
    }
    key_columns = {a: col for a, col in zip(order, unique_cols)}
    return ViewTable(
        view,
        order,
        key_columns,
        values,
        agg=parent.agg,
        extra_values=extra_values,
        measure=parent.measure,
    )
