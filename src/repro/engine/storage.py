"""Catalog persistence: save and reload the physical structures.

A warehouse's materialized views outlive the advisor process.  This
module writes a :class:`~repro.engine.catalog.Catalog` to a directory —
the fact table and every view table as ``.npz`` arrays, plus a manifest
of the built indexes — and loads it back, rebuilding the B+trees from the
stored tables (index *contents* are derivable; only their identity needs
persisting, which keeps the format trivial and the trees always
consistent with the tables).

Layout::

    <dir>/manifest.json     schema, view list, index list
    <dir>/fact.npz          raw fact columns + measures
    <dir>/view_<label>.npz  key columns + values per materialized view
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.index import Index
from repro.core.view import View
from repro.cube.schema import CubeSchema, Dimension
from repro.engine.catalog import Catalog
from repro.engine.table import FactTable, ViewTable

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _view_filename(label: str) -> str:
    safe = "".join(ch if ch.isalnum() else "_" for ch in label) or "none"
    return f"view_{safe}.npz"


def save_catalog(catalog: Catalog, directory: PathLike) -> None:
    """Write the catalog to a directory (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    schema = catalog.fact.schema

    np.savez(
        directory / "fact.npz",
        measures=catalog.fact.measures,
        **{f"dim_{name}": catalog.fact.column(name) for name in schema.names},
        **{
            f"measure_{name}": column
            for name, column in catalog.fact.extra_measures.items()
        },
    )

    views = []
    for view in catalog.views():
        table = catalog.view_table(view)
        label = ",".join(table.attrs) if table.attrs else "none"
        filename = _view_filename(label)
        np.savez(
            directory / filename,
            values=table.values,
            **{f"key_{a}": table.key_columns[a] for a in table.attrs},
            **{
                f"measure_{name}": column
                for name, column in table.extra_values.items()
            },
        )
        views.append(
            {
                "attrs": list(table.attrs),
                "agg": table.agg,
                "measure": table.measure,
                "extra_measures": list(table.extra_values),
                "file": filename,
            }
        )

    indexes = [
        {"view": sorted(index.view.attrs), "key": list(index.key)}
        for index in catalog.indexes()
    ]
    manifest = {
        "format_version": _FORMAT_VERSION,
        "dimensions": {d.name: d.cardinality for d in schema.dimensions},
        "measure": schema.measure,
        "extra_measures": list(catalog.fact.extra_measures),
        "views": views,
        "indexes": indexes,
    }
    with open(directory / "manifest.json", "w") as f:
        json.dump(manifest, f, indent=2)
        f.write("\n")


def load_catalog(directory: PathLike) -> Catalog:
    """Reload a catalog saved with :func:`save_catalog`.

    B+trees are rebuilt from the stored view tables, so the loaded
    catalog is bit-for-bit equivalent for every query.
    """
    directory = Path(directory)
    with open(directory / "manifest.json") as f:
        manifest = json.load(f)
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported catalog format {manifest.get('format_version')!r}"
        )

    schema = CubeSchema(
        [Dimension(n, int(c)) for n, c in manifest["dimensions"].items()],
        measure=manifest.get("measure", "sales"),
    )
    extra_names = manifest.get("extra_measures", [])
    with np.load(directory / "fact.npz") as arrays:
        fact = FactTable(
            schema,
            {name: arrays[f"dim_{name}"] for name in schema.names},
            arrays["measures"],
            extra_measures={
                name: arrays[f"measure_{name}"] for name in extra_names
            },
        )
    catalog = Catalog(fact)

    for entry in manifest["views"]:
        attrs = tuple(entry["attrs"])
        with np.load(directory / entry["file"]) as arrays:
            table = ViewTable(
                View(attrs),
                attrs,
                {a: arrays[f"key_{a}"] for a in attrs},
                arrays["values"],
                agg=entry.get("agg", "sum"),
                extra_values={
                    name: arrays[f"measure_{name}"]
                    for name in entry.get("extra_measures", [])
                },
                measure=entry.get("measure", schema.measure),
            )
        catalog.add_view(table)

    for entry in manifest["indexes"]:
        index = Index(View(entry["view"]), tuple(entry["key"]))
        catalog.build_index(index)
    return catalog
