"""Column-oriented tables for the mini-ROLAP engine.

Two table kinds:

* :class:`FactTable` — the raw data: one integer column per dimension plus
  a float measure column.
* :class:`ViewTable` — a materialized subcube: distinct attribute
  combinations with the aggregated measure, sorted by key.

Both are numpy-backed and deliberately simple; the engine exists to count
rows processed, not to win benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.view import View
from repro.cube.schema import CubeSchema


class FactTable:
    """The raw fact table: dimension columns plus measure column(s).

    ``measures`` is the schema's primary measure; ``extra_measures``
    optionally adds further named measure columns (e.g. ``quantity``
    next to ``sales``) that materialized views aggregate alongside the
    primary one.
    """

    def __init__(
        self,
        schema: CubeSchema,
        columns: Mapping[str, np.ndarray],
        measures: np.ndarray,
        extra_measures: Optional[Mapping[str, np.ndarray]] = None,
    ):
        self.schema = schema
        missing = set(schema.names) - set(columns)
        if missing:
            raise ValueError(f"missing dimension columns: {sorted(missing)}")
        extra_measures = dict(extra_measures or {})
        collisions = set(extra_measures) & (set(schema.names) | {schema.measure})
        if collisions:
            raise ValueError(
                f"extra measures collide with schema names: {sorted(collisions)}"
            )
        lengths = {name: len(columns[name]) for name in schema.names}
        lengths[schema.measure] = len(measures)
        for name, values in extra_measures.items():
            lengths[name] = len(values)
        if len(set(lengths.values())) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        self.columns: Dict[str, np.ndarray] = {
            name: np.asarray(columns[name], dtype=np.int64) for name in schema.names
        }
        for name, col in self.columns.items():
            card = schema.cardinality(name)
            if col.size and (col.min() < 0 or col.max() >= card):
                raise ValueError(
                    f"column {name!r} has values outside [0, {card})"
                )
        self.measures = np.asarray(measures, dtype=np.float64)
        self.extra_measures: Dict[str, np.ndarray] = {
            name: np.asarray(values, dtype=np.float64)
            for name, values in extra_measures.items()
        }

    @property
    def n_rows(self) -> int:
        return len(self.measures)

    @property
    def measure_names(self) -> Tuple[str, ...]:
        """The primary measure followed by any extra measures."""
        return (self.schema.measure, *self.extra_measures)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def measure_column(self, name: Optional[str] = None) -> np.ndarray:
        """The named measure column (default: the schema's measure)."""
        if name is None or name == self.schema.measure:
            return self.measures
        try:
            return self.extra_measures[name]
        except KeyError:
            raise KeyError(
                f"unknown measure {name!r}; have {self.measure_names}"
            ) from None

    def distinct_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct combinations of the given attributes —
        exactly the size of the view grouping by them."""
        if not attrs:
            return 1
        stacked = np.stack([self.columns[a] for a in attrs], axis=1)
        return int(np.unique(stacked, axis=0).shape[0])

    def __repr__(self) -> str:
        return f"FactTable({self.schema.names}, rows={self.n_rows})"


class ViewTable:
    """A materialized view: sorted distinct keys with aggregated measures.

    ``attrs`` fixes the column order of the keys (schema order).  The table
    is sorted lexicographically by key, which lets the executor and the
    index builder work with plain arrays.
    """

    def __init__(
        self,
        view: View,
        attrs: Tuple[str, ...],
        key_columns: Mapping[str, np.ndarray],
        values: np.ndarray,
        agg: str = "sum",
        extra_values: Optional[Mapping[str, np.ndarray]] = None,
        measure: str = "sales",
    ):
        if set(attrs) != set(view.attrs):
            raise ValueError(f"attrs {attrs} do not match view {view}")
        self.view = view
        self.attrs = tuple(attrs)
        self.agg = agg
        self.measure = measure
        self.key_columns = {a: np.asarray(key_columns[a]) for a in attrs}
        self.values = np.asarray(values, dtype=np.float64)
        self.extra_values: Dict[str, np.ndarray] = {
            name: np.asarray(col, dtype=np.float64)
            for name, col in (extra_values or {}).items()
        }
        lengths = {len(col) for col in self.key_columns.values()}
        lengths.add(len(self.values))
        lengths.update(len(col) for col in self.extra_values.values())
        if len(lengths) != 1:
            raise ValueError("key/value column lengths differ")

    @property
    def n_rows(self) -> int:
        return len(self.values)

    def values_for(self, measure: Optional[str] = None) -> np.ndarray:
        """The aggregated column for the named measure.

        ``None`` means the primary measure the table was built with.
        """
        if measure is None or measure == self.measure:
            return self.values
        try:
            return self.extra_values[measure]
        except KeyError:
            raise KeyError(
                f"view {self.view} has no measure {measure!r}; "
                f"available: {(self.measure, *self.extra_values)}"
            ) from None

    def row_key(self, row: int, attrs: Sequence[str]) -> tuple:
        """The values of the given attributes in the given row."""
        return tuple(int(self.key_columns[a][row]) for a in attrs)

    def iter_rows(self) -> Iterator[Tuple[tuple, float]]:
        """Yield ``(key, value)`` with keys in ``self.attrs`` order."""
        cols = [self.key_columns[a] for a in self.attrs]
        for row in range(self.n_rows):
            yield tuple(int(c[row]) for c in cols), float(self.values[row])

    def __repr__(self) -> str:
        return f"ViewTable({self.view}, rows={self.n_rows})"
