"""A B+tree with prefix range scans — the index structure of Section 3.3.

The paper's indexes are "B-Tree indexes (or variants)" whose search key is
a concatenation of dimension attributes; a query with selection values for
a *prefix* of the key touches only the matching leaf entries.  This module
implements a textbook B+tree (internal nodes route; leaves hold entries
and are chained left-to-right) so the mini-ROLAP engine can measure the
actual number of rows an index-assisted plan processes and validate the
paper's cost formula.

Keys are tuples of integers (attribute values in key order, optionally
suffixed with a row id to keep keys unique).  Entries are ``(key, value)``
pairs; values are opaque to the tree.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("keys",)


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        self.keys: List[tuple] = []
        self.values: List = []
        self.next: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] holds the rest
        self.keys: List[tuple] = []
        self.children: List[_Node] = []


class BPlusTree:
    """A B+tree over tuple keys.

    Parameters
    ----------
    order:
        Maximum number of keys per node (≥ 3).  Nodes split at
        ``order + 1`` keys.

    >>> tree = BPlusTree(order=4)
    >>> for i in range(10):
    ...     tree.insert((i,), i * i)
    >>> tree.search((3,))
    9
    >>> [v for __, v in tree.range_scan((2,), (5,))]
    [4, 9, 16]
    """

    def __init__(self, order: int = 32):
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self.order = order
        self._root: _Node = _Leaf()
        self._size = 0

    # -------------------------------------------------------------- basics

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
            height += 1
        return height

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes — the paper's index-size measure."""
        leaf = self._leftmost_leaf()
        count = 0
        while leaf is not None:
            count += 1
            leaf = leaf.next
        return count

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    # -------------------------------------------------------------- insert

    def insert(self, key: tuple, value) -> None:
        """Insert an entry.  Duplicate keys are rejected — suffix the key
        with a row id if duplicates are expected."""
        if not isinstance(key, tuple):
            raise TypeError(f"keys must be tuples, got {type(key).__name__}")
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, key: tuple, value):
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                raise KeyError(f"duplicate key {key}")
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        pos = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[pos], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(pos, sep)
            node.children.insert(pos + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ---------------------------------------------------------- bulk load

    @classmethod
    def bulk_load(
        cls, entries: Iterable[Tuple[tuple, object]], order: int = 32
    ) -> "BPlusTree":
        """Build a tree bottom-up from key-sorted unique entries.

        Much faster than repeated :meth:`insert` for large indexes.
        Raises ``ValueError`` if the entries are not strictly increasing.
        """
        tree = cls(order=order)
        entries = list(entries)
        if not entries:
            return tree
        for (a, __), (b, __2) in zip(entries, entries[1:]):
            if a >= b:
                raise ValueError("bulk_load requires strictly increasing keys")

        fill = max(2, (order + 1) // 2 + 1)
        leaves: List[_Leaf] = []
        for start in range(0, len(entries), fill):
            leaf = _Leaf()
            chunk = entries[start : start + fill]
            leaf.keys = [k for k, __ in chunk]
            leaf.values = [v for __, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        # avoid an underfull final leaf by rebalancing with its neighbour
        if len(leaves) >= 2 and len(leaves[-1].keys) < 2:
            prev, last = leaves[-2], leaves[-1]
            merged_keys = prev.keys + last.keys
            merged_values = prev.values + last.values
            half = len(merged_keys) // 2
            prev.keys, last.keys = merged_keys[:half], merged_keys[half:]
            prev.values, last.values = merged_values[:half], merged_values[half:]

        level: List[_Node] = list(leaves)
        while len(level) > 1:
            # group children under parents; a trailing singleton group
            # would create a mixed-depth level (fatal for rebalancing on
            # delete), so borrow one child from the previous group.
            groups = [level[start : start + fill] for start in range(0, len(level), fill)]
            if len(groups) >= 2 and len(groups[-1]) == 1:
                groups[-1].insert(0, groups[-2].pop())
            parents: List[_Node] = []
            for group in groups:
                parent = _Internal()
                parent.children = group
                parent.keys = [tree._smallest_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        tree._size = len(entries)
        return tree

    def _smallest_key(self, node: _Node) -> tuple:
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0]

    # -------------------------------------------------------------- delete

    def delete(self, key: tuple) -> None:
        """Remove an entry; raises ``KeyError`` if the key is absent.

        Underfull nodes (< ``order // 2`` keys) borrow from or merge with
        a sibling, keeping the tree balanced; the root collapses when it
        has a single child.
        """
        if not isinstance(key, tuple):
            raise TypeError(f"keys must be tuples, got {type(key).__name__}")
        found = self._delete(self._root, key)
        if not found:
            raise KeyError(f"key {key} not found")
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
        self._size -= 1

    @property
    def _min_keys(self) -> int:
        return self.order // 2

    def _delete(self, node: _Node, key: tuple) -> bool:
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.keys, key)
            if pos >= len(node.keys) or node.keys[pos] != key:
                return False
            node.keys.pop(pos)
            node.values.pop(pos)
            return True
        pos = bisect.bisect_right(node.keys, key)
        child = node.children[pos]
        found = self._delete(child, key)
        if found and len(child.keys) < self._min_keys:
            self._rebalance(node, pos)
        return found

    def _rebalance(self, parent: _Internal, pos: int) -> None:
        """Fix an underfull child at ``parent.children[pos]``."""
        child = parent.children[pos]
        left = parent.children[pos - 1] if pos > 0 else None
        right = parent.children[pos + 1] if pos + 1 < len(parent.children) else None

        if left is not None and len(left.keys) > self._min_keys:
            self._borrow_from_left(parent, pos, left, child)
            return
        if right is not None and len(right.keys) > self._min_keys:
            self._borrow_from_right(parent, pos, child, right)
            return
        if left is not None:
            self._merge(parent, pos - 1, left, child)
        elif right is not None:
            self._merge(parent, pos, child, right)

    def _borrow_from_left(self, parent, pos, left, child) -> None:
        if isinstance(child, _Leaf):
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[pos - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[pos - 1])
            parent.keys[pos - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent, pos, child, right) -> None:
        if isinstance(child, _Leaf):
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[pos] = right.keys[0]
        else:
            child.keys.append(parent.keys[pos])
            parent.keys[pos] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_pos: int, left, right) -> None:
        """Fold ``right`` (children[left_pos+1]) into ``left``."""
        if isinstance(left, _Leaf):
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_pos])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_pos)
        parent.children.pop(left_pos + 1)

    # -------------------------------------------------------------- search

    def search(self, key: tuple):
        """Return the value for ``key``, or ``None`` if absent."""
        node = self._root
        while isinstance(node, _Internal):
            pos = bisect.bisect_right(node.keys, key)
            node = node.children[pos]
        pos = bisect.bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            return node.values[pos]
        return None

    def _find_leaf(self, key: tuple) -> Tuple[_Leaf, int]:
        """Leaf and in-leaf position of the first entry with key >= key."""
        node = self._root
        while isinstance(node, _Internal):
            pos = bisect.bisect_right(node.keys, key)
            node = node.children[pos]
        return node, bisect.bisect_left(node.keys, key)

    # ---------------------------------------------------------------- scan

    def items(self) -> Iterator[Tuple[tuple, object]]:
        """All entries in key order."""
        leaf: Optional[_Leaf] = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range_scan(
        self, low: tuple, high: tuple, inclusive_high: bool = False
    ) -> Iterator[Tuple[tuple, object]]:
        """Entries with ``low <= key < high`` (or ``<= high`` if asked)."""
        leaf, pos = self._find_leaf(low)
        while leaf is not None:
            for i in range(pos, len(leaf.keys)):
                key = leaf.keys[i]
                if key > high or (key == high and not inclusive_high):
                    return
                yield key, leaf.values[i]
            leaf = leaf.next
            pos = 0

    def prefix_scan(self, prefix: tuple) -> Iterator[Tuple[tuple, object]]:
        """Entries whose key starts with ``prefix`` — the B-tree access the
        paper's cost formula charges for: only matching rows are touched.

        >>> tree = BPlusTree.bulk_load([((i, j), 0) for i in range(3)
        ...                             for j in range(3)])
        >>> sum(1 for __ in tree.prefix_scan((1,)))
        3
        """
        if not isinstance(prefix, tuple):
            raise TypeError("prefix must be a tuple")
        if not prefix:
            yield from self.items()
            return
        leaf, pos = self._find_leaf(prefix)
        k = len(prefix)
        while leaf is not None:
            for i in range(pos, len(leaf.keys)):
                key = leaf.keys[i]
                head = key[:k]
                if head != prefix:
                    if head > prefix:
                        return
                    continue
                yield key, leaf.values[i]
            leaf = leaf.next
            pos = 0
