"""Incremental maintenance of materialized views and indexes (extension).

The paper selects structures for query performance; a deployed ROLAP
system must also keep them fresh as fact rows arrive ("load time" is the
space budget's twin in Example 2.1).  This module implements delta-based
refresh for the engine:

* :func:`apply_delta` — append a batch of fact rows and propagate it to
  every materialized view (aggregate the delta, merge into the sorted
  view table) and every index (rebuilt, since merged tables renumber
  rows).  Returns a :class:`RefreshReport` of rows touched, so the
  maintenance cost is measurable in the same unit as query cost.
* :func:`estimate_refresh_cost` — the analytical counterpart: the rows a
  refresh of a selection touches, usable as a maintenance-cost model when
  weighing selections (cf. the view-selection-with-maintenance framework
  of [G97], which the paper cites).

Only ``sum``/``count`` aggregates are self-maintainable under inserts;
``min``/``max`` tables raise (they may need recomputation on deletes and
we keep the honest restriction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.materialize import _aggregate, _group_keys, materialize_view
from repro.engine.table import FactTable, ViewTable


@dataclass
class RefreshReport:
    """Rows touched while refreshing a catalog after a delta batch."""

    delta_rows: int
    view_rows_scanned: int = 0
    index_entries_rebuilt: int = 0
    views_refreshed: Tuple[str, ...] = ()
    indexes_rebuilt: Tuple[str, ...] = ()

    @property
    def total_rows_touched(self) -> int:
        """Aggregate maintenance cost, in the paper's unit (rows)."""
        return (
            self.delta_rows * max(1, len(self.views_refreshed))
            + self.view_rows_scanned
            + self.index_entries_rebuilt
        )


def merge_view_tables(base: ViewTable, delta: ViewTable) -> ViewTable:
    """Merge two view tables over the same view by summing measures.

    Both tables must be keyed on the same attributes; the result is
    sorted (a by-product of the re-grouping).
    """
    if base.view != delta.view or base.attrs != delta.attrs:
        raise ValueError(
            f"cannot merge {delta.view} ({delta.attrs}) into "
            f"{base.view} ({base.attrs})"
        )
    if set(base.extra_values) != set(delta.extra_values):
        raise ValueError(
            f"measure sets differ: {sorted(base.extra_values)} vs "
            f"{sorted(delta.extra_values)}"
        )
    key_cols = tuple(
        np.concatenate([base.key_columns[a], delta.key_columns[a]])
        for a in base.attrs
    )
    # groups from both sides combine by summation for both sum- and
    # count-aggregated tables (counts of a union add up)
    unique_cols, inverse, n_groups = _group_keys(key_cols)
    merged = _aggregate(
        inverse, n_groups, np.concatenate([base.values, delta.values]), "sum"
    )
    extra_merged = {
        name: _aggregate(
            inverse,
            n_groups,
            np.concatenate([base.extra_values[name], delta.extra_values[name]]),
            "sum",
        )
        for name in base.extra_values
    }
    key_columns = {a: col for a, col in zip(base.attrs, unique_cols)}
    return ViewTable(
        base.view,
        base.attrs,
        key_columns,
        merged,
        agg=base.agg,
        extra_values=extra_merged,
        measure=base.measure,
    )


def apply_delta(
    catalog: Catalog,
    delta_columns: Mapping[str, np.ndarray],
    delta_measures: np.ndarray,
    delta_extra_measures: Mapping[str, np.ndarray] = None,
) -> RefreshReport:
    """Append fact rows and refresh every materialized view and index.

    The delta is validated against the catalog's schema (same checks as
    :class:`FactTable`) and must carry the same measure set as the
    existing facts.  Views are refreshed by aggregating the delta to each
    view's grouping and merging; indexes on refreshed views are rebuilt
    from the merged tables.
    """
    schema = catalog.fact.schema
    delta = FactTable(
        schema, delta_columns, delta_measures, extra_measures=delta_extra_measures
    )
    if set(delta.extra_measures) != set(catalog.fact.extra_measures):
        raise ValueError(
            f"delta measures {sorted(delta.measure_names)} do not match the "
            f"catalog's {sorted(catalog.fact.measure_names)}"
        )
    for view in catalog.views():
        if catalog.view_table(view).agg not in ("sum", "count"):
            raise ValueError(
                f"view {view} uses aggregate "
                f"{catalog.view_table(view).agg!r}, which is not "
                "self-maintainable under inserts"
            )

    # 1. extend the raw fact table
    merged_columns = {
        name: np.concatenate([catalog.fact.column(name), delta.column(name)])
        for name in schema.names
    }
    merged_measures = np.concatenate([catalog.fact.measures, delta.measures])
    merged_extras = {
        name: np.concatenate([catalog.fact.extra_measures[name], column])
        for name, column in delta.extra_measures.items()
    }
    catalog.fact = FactTable(
        schema, merged_columns, merged_measures, extra_measures=merged_extras
    )

    report = RefreshReport(delta_rows=delta.n_rows)

    # 2. refresh each materialized view by aggregate-and-merge
    views_touched = []
    for view in list(catalog.views()):
        base = catalog.view_table(view)
        delta_table = materialize_view(delta, view, base.agg)
        merged = merge_view_tables(base, delta_table)
        catalog.add_view(merged)
        report.view_rows_scanned += base.n_rows + delta_table.n_rows
        views_touched.append(str(view))
    report.views_refreshed = tuple(views_touched)

    # 3. rebuild indexes on refreshed views (merged tables renumber rows)
    rebuilt = []
    for index in list(catalog.indexes()):
        catalog.drop_index(index)
        tree = catalog.build_index(index)
        report.index_entries_rebuilt += len(tree)
        rebuilt.append(str(index))
    report.indexes_rebuilt = tuple(rebuilt)

    # 4. publish the refresh: consumers holding cached answers (the
    # serving result cache tags entries with this counter) must observe
    # that the catalog's contents changed
    catalog.version += 1
    return report


def estimate_refresh_cost(
    view_rows: Mapping[str, float],
    selection: Mapping[str, bool],
    delta_rows: float,
) -> float:
    """Analytical refresh cost of a selection, in rows.

    ``view_rows`` maps structure name → rows of the owning view;
    ``selection`` maps structure name → is_index.  Each view refresh
    scans the delta plus the view; each index rebuild touches the view's
    rows once.  This mirrors what :func:`apply_delta` actually does, so
    the estimate is checkable against :class:`RefreshReport`.
    """
    if delta_rows < 0:
        raise ValueError("delta_rows must be >= 0")
    cost = 0.0
    for name, is_index in selection.items():
        rows = view_rows[name]
        if is_index:
            cost += rows
        else:
            cost += delta_rows + rows
    return cost
