"""Mined candidate sets: from a query log to a pruned candidate space.

The full candidate universe of an ``n``-dimensional cube — ``2^n`` views,
``~2·n!`` fat indexes, ``3^n`` slice queries — is why advise tops out
around d=7–8.  :func:`mine_candidates` shrinks all three at once using
the observed workload:

* **queries** become the patterns actually seen in the log, weighted by
  occurrence;
* **views** become the attribute unions of the query clusters whose
  workload support clears a threshold, closed upward so every observed
  query keeps at least one answering plan besides the raw cube, plus
  the top view itself (the raw-cube fallback);
* **indexes** become at most ``max_indexes_per_view`` fat keys per kept
  view, ordered so the workload's hottest selection sets are key
  prefixes.

Everything is deterministic — same log, same parameters, same mined set,
same :meth:`MinedCandidates.fingerprint` — because mined candidates feed
checkpointed selection runs that must resume bit-identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.core.index import parse_index_label
from repro.core.query import SliceQuery
from repro.core.view import parse_view
from repro.cube.query_log import LogEntry, pattern_counts
from repro.mining.cluster import QueryCluster, cluster_queries, query_sort_key

#: Minimum workload support for a cluster to sponsor candidates.
DEFAULT_SUPPORT = 0.01
#: Jaccard threshold for merging attribute sets into one cluster.
DEFAULT_SIMILARITY = 0.5
#: Cap on mined fat-index keys per kept view (the full universe has
#: ``m!`` per ``m``-attribute view).
DEFAULT_MAX_INDEXES_PER_VIEW = 8

LogSource = Union[Mapping[SliceQuery, float], Iterable[LogEntry]]


@dataclass
class MinedCandidates:
    """The pruned candidate space mined from a workload.

    ``view_attrs`` is ordered by (dimensionality, schema position) —
    the same order :meth:`~repro.core.lattice.CubeLattice.views` uses —
    so graphs built from mined candidates tie-break greedy argmax scans
    the same way full-universe graphs do.
    """

    schema_names: Tuple[str, ...]
    queries: Dict[SliceQuery, float]
    view_attrs: List[frozenset]
    index_keys: Dict[frozenset, List[Tuple[str, ...]]]
    clusters: List[QueryCluster] = field(default_factory=list)
    kept_clusters: int = 0
    dropped_weight: float = 0.0
    total_weight: float = 0.0
    support: float = DEFAULT_SUPPORT
    similarity: float = DEFAULT_SIMILARITY
    max_indexes_per_view: int = DEFAULT_MAX_INDEXES_PER_VIEW

    # ------------------------------------------------------------- reading

    @property
    def n_views(self) -> int:
        return len(self.view_attrs)

    @property
    def n_indexes(self) -> int:
        return sum(len(keys) for keys in self.index_keys.values())

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def covers(self, query: SliceQuery) -> bool:
        """True when some kept view answers the query."""
        return any(attrs >= query.attrs for attrs in self.view_attrs)

    def _schema_pos(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.schema_names)}

    def _view_key(self, attrs: frozenset) -> tuple:
        pos = self._schema_pos()
        return (len(attrs), tuple(sorted(pos[a] for a in attrs)))

    # ------------------------------------------------------------ mutation

    def ensure_view(self, attrs: Iterable[str]) -> frozenset:
        """Add a view candidate (no-op when already kept); returns its
        attribute set.  Keeps ``view_attrs`` in lattice order."""
        attrs = frozenset(attrs)
        unknown = attrs - set(self.schema_names)
        if unknown:
            raise ValueError(
                f"view attributes {sorted(unknown)} are not cube dimensions "
                f"(have {', '.join(self.schema_names)})"
            )
        if attrs not in self.index_keys:
            self.view_attrs.append(attrs)
            self.view_attrs.sort(key=self._view_key)
            self.index_keys[attrs] = []
        return attrs

    def ensure_index(self, view_attrs: Iterable[str], key: Sequence[str]) -> None:
        """Add an index candidate (and its view) when not already kept."""
        attrs = self.ensure_view(view_attrs)
        key = tuple(key)
        extraneous = set(key) - attrs
        if extraneous:
            raise ValueError(
                f"index key attributes {sorted(extraneous)} are not in view "
                f"{sorted(attrs)}"
            )
        if key not in self.index_keys[attrs]:
            self.index_keys[attrs].append(key)

    def ensure_structures(self, names: Iterable[str]) -> None:
        """Guarantee the named structures (paper-style labels, e.g. ``ps``
        or ``I_sp(ps)``) survive the pruning.

        The adaptive reselector injects the *currently deployed*
        selection here so a pruned re-advise can still price the
        incumbent configuration — otherwise τ_current would be computed
        on a graph missing its own structures.
        """
        for name in names:
            if name.startswith("I_"):
                index = parse_index_label(name)
                self.ensure_index(index.view.attrs, index.key)
            else:
                self.ensure_view(parse_view(name).attrs)

    # --------------------------------------------------------- fingerprint

    def fingerprint(self) -> str:
        """Deterministic digest of the mined set (content + parameters).

        Stored in checkpoints by the mining stage boundary so a resumed
        run can prove it re-mined the identical candidate space.
        """
        pos = self._schema_pos()

        def attr_tuple(attrs):
            return [a for a in sorted(attrs, key=lambda x: pos[x])]

        doc = {
            "schema": list(self.schema_names),
            "support": self.support,
            "similarity": self.similarity,
            "max_indexes_per_view": self.max_indexes_per_view,
            "queries": sorted(
                [sorted(q.groupby), sorted(q.selection), float(w)]
                for q, w in self.queries.items()
            ),
            "views": [attr_tuple(attrs) for attrs in self.view_attrs],
            "indexes": [
                [attr_tuple(attrs), [list(key) for key in self.index_keys[attrs]]]
                for attrs in self.view_attrs
            ],
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def mine_candidates(
    source: LogSource,
    schema_names: Sequence[str],
    *,
    support: float = DEFAULT_SUPPORT,
    similarity: float = DEFAULT_SIMILARITY,
    max_indexes_per_view: int = DEFAULT_MAX_INDEXES_PER_VIEW,
) -> MinedCandidates:
    """Mine a pruned candidate set from a workload.

    ``source`` is either an iterable of :class:`LogEntry` (consumed in
    one streaming pass) or an already-aggregated ``{pattern: weight}``
    mapping, e.g. a drift monitor's observed counts.  ``schema_names``
    fixes the dimension order (and the valid attribute universe).

    The kept views are the attribute unions of every cluster with
    workload support ≥ ``support``, the top view (raw-cube fallback,
    always kept), and — upward closure — ``view(attrs(q))`` for any
    observed query no kept view below the top could answer.  Kept index
    keys per view put the view's hottest observed selection sets first.
    """
    if support < 0:
        raise ValueError(f"support must be >= 0, got {support}")
    if max_indexes_per_view < 0:
        raise ValueError(
            f"max_indexes_per_view must be >= 0, got {max_indexes_per_view}"
        )
    schema_names = tuple(schema_names)
    if len(set(schema_names)) != len(schema_names) or not schema_names:
        raise ValueError("schema_names must be non-empty and unique")
    known = set(schema_names)
    pos = {name: i for i, name in enumerate(schema_names)}

    if isinstance(source, Mapping):
        raw_counts: Mapping[SliceQuery, float] = source
    else:
        raw_counts = pattern_counts(source)
    counts: Dict[SliceQuery, float] = {}
    for query, weight in raw_counts.items():
        weight = float(weight)
        if weight <= 0:
            continue
        unknown = query.attrs - known
        if unknown:
            raise ValueError(
                f"query {query} uses attributes {sorted(unknown)} that are "
                f"not cube dimensions (have {', '.join(schema_names)})"
            )
        counts[query] = counts.get(query, 0.0) + weight
    total = sum(counts.values())

    clusters = cluster_queries(counts, similarity=similarity)
    kept = [c for c in clusters if c.support >= support]
    dropped_weight = sum(c.weight for c in clusters if c.support < support)

    top = frozenset(schema_names)
    views = {c.attrs for c in kept}
    views.add(top)

    # upward closure: every observed query keeps an answering plan
    # besides the raw-cube fallback (its own associated view when no
    # kept view below the top covers it).
    for query in sorted(counts, key=query_sort_key):
        if query.attrs == top:
            continue  # the top view IS this query's associated view
        covering = [v for v in views if v >= query.attrs and v != top]
        if not covering:
            views.add(query.attrs)

    # group observed patterns by attribute set once; per-view assignment
    # then tests set containment per distinct attribute set, not per
    # pattern — the d≥9 scale path.
    by_attrs: Dict[frozenset, List[Tuple[SliceQuery, float]]] = {}
    for query, weight in counts.items():
        by_attrs.setdefault(query.attrs, []).append((query, weight))

    ordered_views = sorted(views, key=lambda v: (len(v), tuple(sorted(pos[a] for a in v))))
    index_keys: Dict[frozenset, List[Tuple[str, ...]]] = {}
    for view in ordered_views:
        keys: List[Tuple[str, ...]] = []
        if view and max_indexes_per_view > 0:
            assigned: List[Tuple[SliceQuery, float]] = []
            for attrs, members in by_attrs.items():
                if attrs <= view:
                    assigned.extend(members)
            # per-attribute selection heat within this view's workload
            sel_weight: Dict[str, float] = {}
            sel_sets: Dict[frozenset, float] = {}
            for query, weight in assigned:
                if not query.selection:
                    continue
                sel_sets[query.selection] = sel_sets.get(query.selection, 0.0) + weight
                for attr in query.selection:
                    sel_weight[attr] = sel_weight.get(attr, 0.0) + weight

            def order(attrs):
                return sorted(attrs, key=lambda a: (-sel_weight.get(a, 0.0), pos[a]))

            ranked = sorted(
                sel_sets.items(), key=lambda kv: (-kv[1], tuple(sorted(kv[0])))
            )
            for sel, _weight in ranked:
                # fat key: the selection set first (fully usable prefix
                # for its sponsors), remaining view attributes after
                key = tuple(order(sel)) + tuple(order(view - sel))
                if key not in keys:
                    keys.append(key)
                if len(keys) >= max_indexes_per_view:
                    break
        index_keys[view] = keys

    return MinedCandidates(
        schema_names=schema_names,
        queries=counts,
        view_attrs=ordered_views,
        index_keys=index_keys,
        clusters=clusters,
        kept_clusters=len(kept),
        dropped_weight=dropped_weight,
        total_weight=total,
        support=support,
        similarity=similarity,
        max_indexes_per_view=max_indexes_per_view,
    )
