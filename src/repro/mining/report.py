"""The mined-candidate report: what was kept, what was dropped, and the
certified price of the pruning.

Emitted by ``repro mine --output`` and uploaded as a CI artifact by the
pruned-advise smoke, so every pruned selection ships with an auditable
record of the candidate space it ran on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.core.index import Index, count_fat_indexes
from repro.core.lattice import CubeLattice
from repro.core.view import View

from repro.mining.bound import BenefitBound
from repro.mining.candidates import MinedCandidates

PathLike = Union[str, Path]

REPORT_KIND = "repro-mining-report"
REPORT_VERSION = 1


def _label(attrs: frozenset, lattice: Optional[CubeLattice]) -> str:
    if lattice is not None:
        return lattice.label(View(attrs))
    return str(View(attrs))


def mining_report(
    mined: MinedCandidates,
    bound: Optional[BenefitBound] = None,
    lattice: Optional[CubeLattice] = None,
) -> dict:
    """Serialize a mined candidate set (plus its benefit bound) to a dict."""
    n = len(mined.schema_names)
    report = {
        "kind": REPORT_KIND,
        "version": REPORT_VERSION,
        "fingerprint": mined.fingerprint(),
        "params": {
            "support": mined.support,
            "similarity": mined.similarity,
            "max_indexes_per_view": mined.max_indexes_per_view,
        },
        "workload": {
            "total_weight": mined.total_weight,
            "distinct_patterns": mined.n_queries,
            "dropped_weight": mined.dropped_weight,
        },
        "clusters": [
            {
                "attrs": _label(c.attrs, lattice),
                "patterns": c.size,
                "weight": c.weight,
                "support": c.support,
                "kept": c.support >= mined.support,
            }
            for c in mined.clusters
        ],
        "candidates": {
            "n_views": mined.n_views,
            "n_indexes": mined.n_indexes,
            "views": [_label(attrs, lattice) for attrs in mined.view_attrs],
            "indexes": {
                _label(attrs, lattice): [
                    lattice.index_label(Index(View(attrs), key))
                    if lattice is not None
                    else str(Index(View(attrs), key))
                    for key in mined.index_keys[attrs]
                ]
                for attrs in mined.view_attrs
                if mined.index_keys[attrs]
            },
            "full_universe": {
                "views": 2 ** n,
                "fat_indexes": count_fat_indexes(n),
                "queries": 3 ** n,
            },
        },
    }
    if bound is not None:
        report["bound"] = bound.to_dict()
    return report


def save_mining_report(report: dict, path: PathLike) -> None:
    """Write a mining report to a JSON file."""
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
