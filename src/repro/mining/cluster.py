"""Workload clustering for candidate mining.

Following Aouiche & Darmont ("Data Mining-based Materialized View and
Index Selection in Data Warehouses"), the first mining step groups the
logged query patterns by the similarity of their attribute sets — two
queries that touch the same dimensions are served well by the same view
and, when their selection attributes overlap, by the same index key.

The clustering here is a deterministic greedy agglomeration: patterns
with *identical* attribute sets always share a cluster; distinct sets
merge into the heaviest compatible cluster whose attribute union stays
Jaccard-similar above a threshold.  Determinism matters more than
cluster optimality — mined candidates feed checkpointed selection runs
that must resume bit-identically — so every ordering below is fixed by
(weight, canonical attribute tuple), never by hash order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.query import SliceQuery


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two attribute sets; two empty sets are 1.0."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def query_sort_key(query: SliceQuery) -> tuple:
    """Canonical, hash-free ordering key for slice-query patterns."""
    return (
        len(query.attrs),
        tuple(sorted(query.attrs)),
        len(query.selection),
        tuple(sorted(query.selection)),
    )


@dataclass(frozen=True)
class QueryCluster:
    """A group of workload patterns with similar attribute sets.

    ``attrs`` is the union of the members' attribute sets — the smallest
    view able to answer every member — which is exactly the candidate
    view the cluster sponsors.
    """

    attrs: frozenset
    queries: Tuple[SliceQuery, ...]  # members, heaviest first
    weight: float  # total observed weight of members
    support: float  # weight / total workload weight

    @property
    def size(self) -> int:
        return len(self.queries)


def cluster_queries(
    counts: Mapping[SliceQuery, float],
    similarity: float = 0.5,
) -> List[QueryCluster]:
    """Cluster workload patterns by attribute-set similarity.

    ``counts`` maps each observed pattern to its weight (occurrence
    count or frequency); non-positive weights are ignored.  Patterns
    with the same attribute set always land in the same cluster; a new
    attribute set joins the existing cluster maximizing Jaccard
    similarity with its attribute union when that similarity reaches
    ``similarity``, else starts its own cluster.  Heavier attribute sets
    seed first, so clusters form around the workload's hot spots.

    Returns clusters sorted heaviest-first; each carries its workload
    ``support`` in [0, 1].
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    groups: Dict[frozenset, List[Tuple[SliceQuery, float]]] = {}
    total = 0.0
    for query, weight in counts.items():
        weight = float(weight)
        if weight <= 0:
            continue
        groups.setdefault(query.attrs, []).append((query, weight))
        total += weight
    ordered = sorted(
        groups.items(),
        key=lambda item: (-sum(w for _q, w in item[1]), tuple(sorted(item[0]))),
    )

    # mutable accumulators: [attrs_union, members]
    built: List[list] = []
    for attrs, members in ordered:
        best = None
        best_sim = -1.0  # so a 0-similarity match still attaches at threshold 0
        for cluster in built:
            sim = jaccard(cluster[0], attrs)
            if sim >= similarity and sim > best_sim:
                best, best_sim = cluster, sim
        if best is None:
            built.append([attrs, list(members)])
        else:
            best[0] = best[0] | attrs
            best[1].extend(members)

    clusters = []
    for attrs_union, members in built:
        members.sort(key=lambda pair: (-pair[1], query_sort_key(pair[0])))
        weight = sum(w for _q, w in members)
        clusters.append(
            QueryCluster(
                attrs=attrs_union,
                queries=tuple(q for q, _w in members),
                weight=weight,
                support=weight / total if total > 0 else 0.0,
            )
        )
    clusters.sort(key=lambda c: (-c.weight, tuple(sorted(c.attrs))))
    return clusters
