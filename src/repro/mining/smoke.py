"""Pruned-advise smoke check: the CI gate behind workload mining.

Mines a recorded query log, advises on the pruned candidate space and on
the full 3^n universe under the *same* observed frequencies, and checks
the certified guarantees end to end:

1. ``ideal_tau`` really is a floor: the full-universe selection's τ is
   never below it.
2. The forgone-benefit bound holds: ``τ_pruned − τ_full`` never exceeds
   ``forgone_bound(τ_pruned)``.

Run it against a log produced by ``repro serve --record``::

    python -m repro serve --dims 4 --queries 400 --record obs.jsonl
    python -m repro.mining.smoke --dims 4 --log obs.jsonl \\
        --output mined-report.json

Exits 0 when both checks hold, 1 otherwise; the JSON report (the mined
candidate space plus the measured τ values) is written either way so CI
uploads a useful artifact even on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

#: Absolute slack for float comparisons between two greedy runs.
EPS = 1e-6


def run_smoke(
    dims: int,
    log_path: str,
    space: Optional[float] = None,
    algorithm: str = "1greedy",
    support: Optional[float] = None,
) -> dict:
    """Mine ``log_path``, advise pruned + full, and return the verdict."""
    from repro.algorithms import FIT_STRICT, RGreedy, InnerLevelGreedy
    from repro.core.benefit import BenefitEngine
    from repro.core.costmodel import LinearCostModel
    from repro.core.qvgraph import QueryViewGraph
    from repro.core.query import enumerate_slice_queries
    from repro.cube.query_log import pattern_counts
    from repro.datasets.tpcd import tpcd_serving_fact
    from repro.io import iter_query_log
    from repro.mining import (
        compute_benefit_bound,
        mine_candidates,
        mining_report,
    )

    model = LinearCostModel.from_fact(tpcd_serving_fact(dims))
    lattice = model.lattice
    schema = lattice.schema
    top_label = lattice.label(lattice.top)
    if space is None:
        space = 3.0 * lattice.size(lattice.top)
    make_algorithm = {
        "1greedy": lambda: RGreedy(1, fit=FIT_STRICT),
        "2greedy": lambda: RGreedy(2, fit=FIT_STRICT),
        "inner": lambda: InnerLevelGreedy(fit=FIT_STRICT),
    }[algorithm]

    counts = pattern_counts(iter_query_log(log_path, schema))
    if not counts:
        raise ValueError(f"{log_path}: query log is empty, nothing to mine")
    kwargs = {} if support is None else {"support": support}
    mined = mine_candidates(counts, schema.names, **kwargs)
    mined.ensure_structures([top_label])
    bound = compute_benefit_bound(mined, lattice)

    pruned_graph = QueryViewGraph.from_mined(lattice, mined)
    pruned = make_algorithm().run(pruned_graph, space, seed=(top_label,))

    # the full-universe reference: every pattern, observed weight or 0
    frequencies = {
        q: float(counts.get(q, 0.0)) for q in enumerate_slice_queries(schema.names)
    }
    full_graph = QueryViewGraph.from_cube(lattice, frequencies=frequencies)
    full = make_algorithm().run(full_graph, space, seed=(top_label,))

    forgone = bound.forgone_bound(pruned.tau)
    ideal_is_floor = full.tau >= bound.ideal_tau - EPS
    bound_holds = pruned.tau - full.tau <= forgone + EPS
    report = mining_report(mined, bound, lattice)
    report["smoke"] = {
        "dims": dims,
        "log": str(log_path),
        "space": space,
        "algorithm": algorithm,
        "tau_pruned": pruned.tau,
        "tau_full": full.tau,
        "tau_gap": pruned.tau - full.tau,
        "forgone_bound": forgone,
        "selected_pruned": list(pruned.selected),
        "selected_full": list(full.selected),
        "checks": {
            "ideal_is_floor": ideal_is_floor,
            "bound_holds": bound_holds,
        },
        "ok": ideal_is_floor and bound_holds,
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.mining.smoke",
        description="verify the pruned-advise forgone-benefit bound "
        "against a full-universe advise on the same observed workload",
    )
    parser.add_argument(
        "--dims", type=int, default=4, choices=(3, 4, 5),
        help="serving-cube dimensionality the log was recorded on",
    )
    parser.add_argument(
        "--log", required=True, help="query log JSONL from repro serve --record"
    )
    parser.add_argument(
        "--space", type=float, default=None,
        help="space budget in rows (default: 3x the top view)",
    )
    parser.add_argument(
        "--algorithm", choices=("1greedy", "2greedy", "inner"),
        default="1greedy",
    )
    parser.add_argument(
        "--support", type=float, default=None,
        help="mining support threshold (default 0.01)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the mined-candidate report (with the smoke verdict) here",
    )
    args = parser.parse_args(argv)

    report = run_smoke(
        args.dims, args.log,
        space=args.space, algorithm=args.algorithm, support=args.support,
    )
    smoke = report["smoke"]
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    print(
        f"pruned tau {smoke['tau_pruned']:g} vs full tau "
        f"{smoke['tau_full']:g} (gap {smoke['tau_gap']:g}, "
        f"certified bound {smoke['forgone_bound']:g})"
    )
    for name, ok in smoke["checks"].items():
        print(f"  {name}: {'ok' if ok else 'FAILED'}")
    if not smoke["ok"]:
        print("pruned-advise smoke FAILED", file=sys.stderr)
        return 1
    print("pruned-advise smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
