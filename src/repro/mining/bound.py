"""Upper bound on the benefit forgone by candidate pruning.

Dropping candidates can only cost benefit, never correctness (the raw
cube always answers).  To keep that cost accountable, we compute, per
observed query ``q`` with weight ``f_q``:

``c_ideal(q)``
    the cheapest cost any candidate in the *full* universe could give
    ``q`` — its own associated view ``view(attrs(q))`` with a fat index
    whose prefix covers all of ``q``'s selection attributes.  No
    selection under any space budget beats ``Σ f_q · c_ideal(q)``.

``c_kept(q)``
    the cheapest cost over the *mined* candidates (and the raw-data
    default) — what an unlimited budget could achieve post-pruning.

Then for any pruned selection with weighted cost ``τ_pruned``::

    τ_pruned − τ_full  ≤  τ_pruned − ideal_tau  =  forgone_bound(τ_pruned)

because the full-universe optimum (and every full-universe greedy
selection) still satisfies ``τ_full ≥ ideal_tau``.  The bound needs no
full-universe run to evaluate, so it scales to d≥9 where the full graph
cannot be built — and at small d it is directly checkable against a
real full advise, which is exactly what the CI smoke does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery
from repro.core.view import View

from repro.mining.candidates import MinedCandidates


@dataclass(frozen=True)
class BenefitBound:
    """Workload-weighted cost floors bracketing what pruning can forgo.

    ``ideal_tau ≤ kept_tau ≤ default_tau``; the gap ``kept_tau −
    ideal_tau`` is the benefit pruning has irrevocably put out of reach
    (at unlimited budget), and :meth:`forgone_bound` turns any achieved
    ``τ_pruned`` into a certified bound on ``τ_pruned − τ_full``.
    """

    ideal_tau: float
    kept_tau: float
    default_tau: float
    total_weight: float

    @property
    def pruning_gap(self) -> float:
        """Benefit unreachable after pruning, at unlimited budget."""
        return max(0.0, self.kept_tau - self.ideal_tau)

    def forgone_bound(self, tau_pruned: float) -> float:
        """Upper bound on ``τ_pruned − τ_full`` for any full-universe
        selection under any space budget."""
        return max(0.0, tau_pruned - self.ideal_tau)

    def relative_forgone(self, tau_pruned: float, baseline: Optional[float] = None) -> float:
        """:meth:`forgone_bound` as a fraction of ``baseline`` (default:
        the all-raw-data cost ``default_tau``)."""
        base = self.default_tau if baseline is None else baseline
        if base <= 0:
            return 0.0
        return self.forgone_bound(tau_pruned) / base

    def to_dict(self) -> dict:
        return {
            "ideal_tau": self.ideal_tau,
            "kept_tau": self.kept_tau,
            "default_tau": self.default_tau,
            "pruning_gap": self.pruning_gap,
            "total_weight": self.total_weight,
        }


def _ideal_cost(
    query: SliceQuery, model: LinearCostModel, lattice: CubeLattice
) -> float:
    """Cheapest cost for ``query`` over the FULL candidate universe.

    The associated view ``view(attrs(q))`` is the smallest answering
    view, and among all (view, index) plans the cost ``max(1, |V|/|E|)``
    is minimized by the smallest ``V`` with the largest usable prefix
    ``E`` — i.e. a fat index on the associated view whose key leads with
    every selection attribute.
    """
    view = View(query.attrs)
    if not query.selection or not query.attrs:
        return min(model.cost(query, view), model.default_cost(query))
    key = tuple(sorted(query.selection)) + tuple(sorted(query.attrs - query.selection))
    best = model.cost(query, view, Index(view, key))
    return min(best, model.cost(query, view), model.default_cost(query))


def _kept_cost(
    query: SliceQuery, mined: MinedCandidates, model: LinearCostModel
) -> float:
    """Cheapest cost for ``query`` over the mined candidates (or raw data)."""
    best = model.default_cost(query)
    for attrs in mined.view_attrs:
        if not attrs >= query.attrs:
            continue
        view = View(attrs)
        best = min(best, model.cost(query, view))
        for key in mined.index_keys.get(attrs, ()):
            best = min(best, model.cost(query, view, Index(view, key)))
    return best


def compute_benefit_bound(
    mined: MinedCandidates,
    lattice: CubeLattice,
    cost_model: Optional[LinearCostModel] = None,
) -> BenefitBound:
    """Price the mined candidate set against the full universe's floor."""
    model = cost_model if cost_model is not None else LinearCostModel(lattice)
    ideal = kept = default = 0.0
    for query, weight in mined.queries.items():
        ideal += weight * _ideal_cost(query, model, lattice)
        kept += weight * _kept_cost(query, mined, model)
        default += weight * model.default_cost(query)
    return BenefitBound(
        ideal_tau=ideal,
        kept_tau=kept,
        default_tau=default,
        total_weight=mined.total_weight,
    )
