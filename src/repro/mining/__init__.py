"""Workload-mined candidate pruning.

Turns a query log into a pruned candidate space — clustered queries,
support-filtered views, bounded fat-index keys — plus a certified upper
bound on the benefit the pruning can forgo.  The pruned space compiles
into a :class:`~repro.core.qvgraph.QueryViewGraph` via
:meth:`~repro.core.qvgraph.QueryViewGraph.from_mined`, which every
selection algorithm accepts unchanged; this is what scales ``advise``
to d≥9 cubes whose full 3^n universe cannot be built.

Typical flow::

    from repro.mining import mine_candidates, compute_benefit_bound

    mined = mine_candidates(entries, schema.names, support=0.01)
    bound = compute_benefit_bound(mined, lattice)
    graph = QueryViewGraph.from_mined(lattice, mined)
    result = RGreedy(1).run(BenefitEngine(graph), budget)
    print(bound.forgone_bound(result.tau))   # certified τ gap vs full
"""

from repro.mining.bound import BenefitBound, compute_benefit_bound
from repro.mining.candidates import (
    DEFAULT_MAX_INDEXES_PER_VIEW,
    DEFAULT_SIMILARITY,
    DEFAULT_SUPPORT,
    MinedCandidates,
    mine_candidates,
)
from repro.mining.cluster import QueryCluster, cluster_queries, jaccard
from repro.mining.report import mining_report, save_mining_report

__all__ = [
    "BenefitBound",
    "DEFAULT_MAX_INDEXES_PER_VIEW",
    "DEFAULT_SIMILARITY",
    "DEFAULT_SUPPORT",
    "MinedCandidates",
    "QueryCluster",
    "cluster_queries",
    "compute_benefit_bound",
    "jaccard",
    "mine_candidates",
    "mining_report",
    "save_mining_report",
]
