"""A small SQL front-end for slice queries.

The paper writes its queries in SQL (Section 3.1) and in the compact
``γ_A σ_B`` notation interchangeably.  This module accepts the SQL form
and produces the model objects, so the engine can be driven with the
statements a user would actually write::

    SELECT p, SUM(sales) FROM cube WHERE s = 17 GROUP BY p

maps to the slice query ``γ(p)σ(s)`` with the binding ``{s: 17}``.

Grammar (case-insensitive keywords)::

    SELECT select_list FROM name [WHERE conjunction] [GROUP BY attrs]
    select_list: (attr ",")* agg "(" measure ")" | attrs (aggregate optional
                 only when a GROUP BY names the same attrs)
    conjunction: attr "=" integer ("AND" attr "=" integer)*

Restrictions match the paper's query class: equality predicates only,
conjunctive WHERE, group-by attributes must equal the non-aggregate
select columns.

The module also works in the other direction: :func:`to_sql` (and
:meth:`ParsedQuery.to_sql`) emit the canonical SQL text of a slice
query, and ``parse_query(to_sql(...))`` round-trips exactly — the SQL
backend (:mod:`repro.backends.sqlite`) leans on this to drive a real
database with the statements the model objects describe.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.query import SliceQuery
from repro.cube.schema import CubeSchema

_AGGREGATES = ("sum", "count", "min", "max")

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_]\w*$")


class SqlError(ValueError):
    """Raised when a statement cannot be parsed or validated."""


def format_select(
    select: Sequence[str],
    agg: str,
    measure: str,
    table: str,
    where: Sequence[Tuple[str, int]] = (),
    groupby: Sequence[str] = (),
) -> str:
    """Format one SELECT statement from its clause pieces.

    The building block under :func:`to_sql` — also reused by the SQLite
    backend, whose view-table statements carry residual WHERE predicates
    that are not part of the slice-query grammar.  ``where`` is ordered
    ``(attr, value)`` pairs; clause order is taken verbatim.
    """
    items = list(select) + [f"{agg.upper()}({measure})"]
    text = f"SELECT {', '.join(items)} FROM {table}"
    if where:
        conjunction = " AND ".join(f"{attr} = {value}" for attr, value in where)
        text += f" WHERE {conjunction}"
    if groupby:
        text += f" GROUP BY {', '.join(groupby)}"
    return text


def to_sql(
    query: SliceQuery,
    values: Optional[Mapping[str, int]] = None,
    agg: str = "sum",
    measure: str = "sales",
    table: str = "cube",
) -> str:
    """Emit the canonical SQL text of a slice query.

    Attributes are emitted in sorted order (both the select/GROUP BY
    list and the WHERE conjunction), so the output is deterministic and
    ``parse_query(to_sql(q, v)) `` recovers exactly ``q`` and ``v``.
    ``values`` must bind every selection attribute — the grammar has no
    way to write an unbound selection.

    >>> to_sql(SliceQuery(groupby=["p"], selection=["s"]), {"s": 17})
    'SELECT p, SUM(sales) FROM cube WHERE s = 17 GROUP BY p'
    >>> to_sql(SliceQuery())
    'SELECT SUM(sales) FROM cube'
    """
    values = dict(values or {})
    missing = query.selection - set(values)
    if missing:
        raise SqlError(
            f"cannot emit SQL: selection attributes {sorted(missing)} "
            "have no bound value"
        )
    extraneous = set(values) - query.selection
    if extraneous:
        raise SqlError(
            f"cannot emit SQL: values bind {sorted(extraneous)}, which are "
            "not selection attributes"
        )
    if agg.lower() not in _AGGREGATES:
        raise SqlError(
            f"unsupported aggregate {agg!r}; use one of {_AGGREGATES}"
        )
    for name in (*query.groupby, *query.selection):
        if not _IDENTIFIER_RE.match(name):
            raise SqlError(f"attribute {name!r} is not a SQL identifier")
    groupby = sorted(query.groupby)
    where = [(attr, int(values[attr])) for attr in sorted(query.selection)]
    return format_select(groupby, agg, measure, table, where, groupby)


@dataclass(frozen=True)
class ParsedQuery:
    """The outcome of parsing one SELECT statement."""

    query: SliceQuery
    values: Dict[str, int]
    agg: str
    measure: str
    table: str

    @property
    def is_executable(self) -> bool:
        """True when every selection attribute has a bound value."""
        return set(self.values) == set(self.query.selection)

    def to_sql(self) -> str:
        """The canonical SQL text of this query (see :func:`to_sql`).

        ``parse_query(parsed.to_sql())`` equals ``parsed`` field for
        field — the emit → parse round trip the tests enforce.
        """
        return to_sql(
            self.query,
            self.values,
            agg=self.agg,
            measure=self.measure,
            table=self.table,
        )


_SELECT_RE = re.compile(
    r"""
    ^\s*select\s+(?P<select>.+?)
    \s+from\s+(?P<table>[A-Za-z_][\w.]*)
    (?:\s+where\s+(?P<where>.+?))?
    (?:\s+group\s+by\s+(?P<groupby>.+?))?
    \s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_AGG_RE = re.compile(
    r"^(?P<agg>\w+)\s*\(\s*(?P<measure>[A-Za-z_]\w*|\*)\s*\)\s*(?:as\s+\w+)?$",
    re.IGNORECASE,
)

_PREDICATE_RE = re.compile(
    r"^\s*(?P<attr>[A-Za-z_]\w*)\s*=\s*(?P<value>-?\d+)\s*$"
)


def _split_commas(text: str) -> List[str]:
    """Split on commas not inside parentheses."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise SqlError("unbalanced parentheses in select list")
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return [p for p in parts if p]


def parse_query(
    text: str,
    schema: Optional[CubeSchema] = None,
    extra_measures: Tuple[str, ...] = (),
) -> ParsedQuery:
    """Parse one SELECT statement into a :class:`ParsedQuery`.

    With a ``schema``, attributes and the measure are validated against
    it (plus any ``extra_measures`` the fact table carries); without
    one, any identifiers are accepted.

    >>> parsed = parse_query(
    ...     "SELECT p, SUM(sales) FROM cube WHERE s = 17 GROUP BY p")
    >>> str(parsed.query)
    'γ(p)σ(s)'
    >>> parsed.values
    {'s': 17}
    """
    match = _SELECT_RE.match(text)
    if not match:
        raise SqlError(
            "expected: SELECT ... FROM name [WHERE ...] [GROUP BY ...]"
        )
    table = match.group("table")

    # ---- select list: plain attributes + at most one aggregate
    select_attrs: List[str] = []
    agg: Optional[str] = None
    measure: Optional[str] = None
    for part in _split_commas(match.group("select")):
        agg_match = _AGG_RE.match(part)
        if agg_match:
            if agg is not None:
                raise SqlError("only one aggregate is supported")
            agg = agg_match.group("agg").lower()
            measure = agg_match.group("measure")
            if agg not in _AGGREGATES:
                raise SqlError(
                    f"unsupported aggregate {agg!r}; use one of {_AGGREGATES}"
                )
            continue
        if not re.match(r"^[A-Za-z_]\w*$", part):
            raise SqlError(f"cannot parse select item {part!r}")
        if part in select_attrs:
            raise SqlError(f"duplicate attribute {part!r} in select list")
        select_attrs.append(part)
    if agg is None:
        raise SqlError("the select list needs an aggregate, e.g. SUM(sales)")

    # ---- where: conjunction of attr = integer
    values: Dict[str, int] = {}
    where = match.group("where")
    if where:
        for predicate in re.split(r"\s+and\s+", where, flags=re.IGNORECASE):
            pred_match = _PREDICATE_RE.match(predicate)
            if not pred_match:
                raise SqlError(
                    f"cannot parse predicate {predicate.strip()!r}; only "
                    "attr = integer conjunctions are supported"
                )
            attr = pred_match.group("attr")
            if attr in values:
                raise SqlError(f"attribute {attr!r} constrained twice")
            values[attr] = int(pred_match.group("value"))

    # ---- group by must equal the non-aggregate select columns
    groupby_text = match.group("groupby")
    groupby = (
        [part.strip() for part in groupby_text.split(",")] if groupby_text else []
    )
    if groupby and any(not re.match(r"^[A-Za-z_]\w*$", g) for g in groupby):
        raise SqlError(f"cannot parse GROUP BY list {groupby_text!r}")
    duplicates = sorted({g for g in groupby if groupby.count(g) > 1})
    if duplicates:
        raise SqlError(f"duplicate attributes {duplicates} in GROUP BY")
    if set(groupby) != set(select_attrs):
        raise SqlError(
            f"GROUP BY attributes {sorted(groupby)} must match the "
            f"non-aggregate select columns {sorted(select_attrs)}"
        )
    overlap = set(groupby) & set(values)
    if overlap:
        raise SqlError(
            f"attributes {sorted(overlap)} appear in both GROUP BY and WHERE"
        )

    if schema is not None:
        known = set(schema.names)
        unknown = (set(groupby) | set(values)) - known
        if unknown:
            raise SqlError(f"unknown attributes {sorted(unknown)}")
        allowed = {"*", schema.measure, *extra_measures}
        if measure not in allowed:
            raise SqlError(
                f"unknown measure {measure!r} (available: {sorted(allowed)})"
            )

    return ParsedQuery(
        query=SliceQuery(groupby=groupby, selection=values.keys()),
        values=values,
        agg=agg,
        measure=measure or "*",
        table=table,
    )


def run_sql(executor, text: str, schema: Optional[CubeSchema] = None):
    """Parse and execute a statement against an engine executor.

    Returns the executor's :class:`~repro.engine.executor.QueryResult`.
    ``count`` aggregates are served by re-aggregation only when the plan
    scans a base table whose measure is the count; for the row-count
    accounting this experiment suite cares about, ``sum`` is the common
    path.
    """
    fact = executor.catalog.fact
    if schema is None:
        schema = fact.schema
    parsed = parse_query(
        text, schema=schema, extra_measures=tuple(fact.extra_measures)
    )
    measure = None
    if parsed.measure not in ("*", schema.measure):
        measure = parsed.measure
    return executor.execute(parsed.query, parsed.values, measure=measure)
