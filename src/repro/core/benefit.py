"""Benefit evaluation for sets of structures (Section 5.2 of the paper).

Given a query-view graph ``G`` and a set ``M`` of materialized structures,
the total query cost is

    τ(G, M) = Σ_i f_i · min(T_i, min over usable (view, index) in M of t)

and the *benefit* of a candidate set ``C`` w.r.t. ``M`` is
``B(C, M) = τ(G, M) − τ(G, M ∪ C)``.  Every selection algorithm in
:mod:`repro.algorithms` evaluates thousands of such benefits, so this
module compiles the graph once and keeps the current per-query best cost
as state, making a benefit evaluation a single vectorized pass.

Two cost-store backends are provided, selected by ``backend=``:

``"dense"``
    The original ``(n_structures × n_queries)`` matrix, ``inf`` where
    there is no edge.  Fast for small, dense graphs; refuses to allocate
    beyond ``dense_limit_bytes`` (a d=7 fat-index cube already needs
    hundreds of MB of mostly-inf cells).
``"sparse"``
    CSR (per-structure) plus CSC (per-query) edge arrays — only the
    edges are stored.  This is what makes 7–8 dimension cubes
    compilable at all.
``"auto"`` (default)
    Dense while the matrix stays small (``AUTO_DENSE_BYTES``), sparse
    beyond — existing small-graph callers see no change.

On top of either store the engine maintains *incremental single-structure
benefits*: after a :meth:`commit`, only queries whose best cost dropped
(the *dirty columns*) can change any candidate's standalone benefit, so
only structures with an edge into a dirty column (the *stale rows*) are
re-scored.  :meth:`lazy_best_single` exploits this — a greedy stage costs
``O(stale edges)`` instead of ``O(n_structures · n_queries)`` — and
:meth:`invalidate` drops the cache.  The eager full-recompute path is
retained (``single_benefits(lazy=False)``) and cross-checked in tests:
lazy and eager stage loops must produce identical selections.

An index is *usable* only when its owning view is materialized; the engine
exposes :meth:`BenefitEngine.is_admissible` so algorithms can enforce the
rule, and raises on attempts to commit an index without its view.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

import numpy as np

from repro.core.qvgraph import QueryViewGraph

try:  # scipy does the CSR->CSC transpose in C; optional, numpy fallback.
    # Imported at module load so the first engine build doesn't pay it.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy is normally available
    _scipy_sparse = None

INF = float("inf")

#: ``backend="auto"`` picks the sparse store once the dense matrix would
#: exceed this many bytes.
AUTO_DENSE_BYTES = 32 * 2**20

#: ``backend="dense"`` refuses to allocate a matrix larger than this
#: (override per-engine with ``dense_limit_bytes=``).  A d=7 fat-index
#: cube needs ~240 MB of mostly-inf cells and is rejected by default.
DENSE_LIMIT_BYTES = 192 * 2**20

#: Relative tolerance of the canonical greedy tie-break: a candidate only
#: displaces the incumbent when its ratio exceeds the incumbent's by this
#: factor.  Shared by every stage loop so lazy and eager paths agree.
RATIO_RTOL = 1e-12

_BACKENDS = ("auto", "dense", "sparse")


def _gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices covering ``[starts[i], starts[i]+lengths[i])`` for all i,
    concatenated in order — the multi-slice gather used for CSR/CSC rows."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    return np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)


def csr_gains(
    row_ptr: np.ndarray,
    row_cols: np.ndarray,
    row_vals: np.ndarray,
    frequencies: np.ndarray,
    base: np.ndarray,
    ids,
) -> np.ndarray:
    """Frequency-weighted positive gain of each structure in ``ids``
    against the per-query cost vector ``base``, over a CSR edge store.

    This is the batched gain kernel shared by :class:`BenefitEngine`
    (``gains_for`` / subset single-benefit refresh) and the parallel
    worker store (:mod:`repro.parallel.worker`): both sides evaluating a
    candidate vector through the *same* kernel — same gather order, same
    ``bincount`` summation — is what makes serial and parallel single
    benefits bitwise identical.
    """
    arr = np.asarray(ids, dtype=np.int64)
    if arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    starts = row_ptr[arr]
    lengths = row_ptr[arr + 1] - starts
    flat = _gather_ranges(starts, lengths)
    cols = row_cols[flat]
    contrib = base[cols] - row_vals[flat]
    np.maximum(contrib, 0.0, out=contrib)
    contrib *= frequencies[cols]
    local = np.repeat(np.arange(arr.size, dtype=np.int64), lengths)
    return np.bincount(local, weights=contrib, minlength=arr.size)


def csr_minimum_with(
    vec: np.ndarray,
    row_ptr: np.ndarray,
    row_cols: np.ndarray,
    row_vals: np.ndarray,
    structure_id: int,
) -> np.ndarray:
    """``np.minimum(vec, cost_row(structure_id))`` over a CSR edge store
    without materializing the row.  Returns a new array."""
    out = vec.copy()
    lo, hi = row_ptr[structure_id], row_ptr[structure_id + 1]
    cols = row_cols[lo:hi]
    # fancy-indexed out= would write into a copy; assign instead
    out[cols] = np.minimum(out[cols], row_vals[lo:hi])
    return out


def chain_pick(ratios: np.ndarray) -> Optional[int]:
    """Winner of the canonical greedy incumbent chain over ``ratios``.

    The canonical rule (shared by every stage loop): scan candidates in
    order; the incumbent is displaced only by a ratio strictly greater
    than ``incumbent · (1 + RATIO_RTOL)``.  All ratios must be positive.

    Vectorized via running prefix maxima: a candidate strictly above the
    previous prefix max times the tolerance *definitely* displaces, one at
    or below the prefix max definitely does not; the (measure-zero)
    ambiguous band falls back to the exact Python scan, so the result is
    always identical to the sequential rule.
    """
    n = len(ratios)
    if n == 0:
        return None
    if n == 1:
        return 0
    cummax = np.maximum.accumulate(ratios)
    prev = np.empty_like(cummax)
    prev[0] = 0.0
    prev[1:] = cummax[:-1]
    definite = ratios > prev * (1.0 + RATIO_RTOL)
    ambiguous = (ratios > prev) & ~definite
    if ambiguous.any():
        best = 0
        best_ratio = float(ratios[0])
        for i in range(1, n):
            if ratios[i] > best_ratio * (1.0 + RATIO_RTOL):
                best = i
                best_ratio = float(ratios[i])
        return best
    return int(np.flatnonzero(definite)[-1])


class BenefitEngine:
    """Compiled, stateful benefit evaluator over a query-view graph.

    The engine assigns every structure an integer id (``0..m-1``) and every
    query an integer id (``0..q-1``).  The cost of answering query ``q``
    via structure ``s`` lives in the backend store (``inf`` when there is
    no edge).  State is the vector of current best per-query costs given
    the committed selection, initialized to the default costs ``T_i``.

    Parameters
    ----------
    graph:
        The query-view graph to compile.
    backend:
        ``"dense"``, ``"sparse"`` or ``"auto"`` (see module docstring).
    dense_limit_bytes:
        Hard cap for the dense matrix; ``backend="dense"`` raises
        ``MemoryError`` beyond it.  Defaults to :data:`DENSE_LIMIT_BYTES`.
    """

    def __init__(
        self,
        graph: QueryViewGraph,
        backend: str = "auto",
        dense_limit_bytes: Optional[int] = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.graph = graph
        self.query_names = [q.name for q in graph.queries]
        self.structure_names = [s.name for s in graph.structures]
        self._query_id = {name: i for i, name in enumerate(self.query_names)}
        self._structure_id = {name: i for i, name in enumerate(self.structure_names)}

        n_q = len(self.query_names)
        n_s = len(self.structure_names)
        self.defaults = np.array(
            [q.default_cost for q in graph.queries], dtype=np.float64
        )
        self.frequencies = np.array(
            [q.frequency for q in graph.queries], dtype=np.float64
        )
        self.spaces = np.array([s.space for s in graph.structures], dtype=np.float64)
        self.is_view = np.array([s.is_view for s in graph.structures], dtype=bool)
        self.view_id_of = np.array(
            [self._structure_id[s.view_name] for s in graph.structures], dtype=np.int64
        )

        q_idx, s_idx, vals = self._edge_arrays(graph)
        self._build_sparse(n_s, n_q, s_idx, q_idx, vals)

        limit = DENSE_LIMIT_BYTES if dense_limit_bytes is None else int(dense_limit_bytes)
        dense_bytes = self.dense_cost_bytes(n_s, n_q)
        if backend == "auto":
            backend = "dense" if dense_bytes <= min(AUTO_DENSE_BYTES, limit) else "sparse"
        if backend == "dense":
            if dense_bytes > limit:
                raise MemoryError(
                    f"dense cost matrix needs {dense_bytes} bytes for "
                    f"{n_s} structures x {n_q} queries (limit {limit}); "
                    "use backend='sparse' or raise dense_limit_bytes"
                )
            cost = np.full((n_s, n_q), INF, dtype=np.float64)
            np.minimum.at(cost, (self._nnz_rows, self._row_cols), self._row_vals)
            self._dense_cost = cost
        else:
            self._dense_cost = None
        self.backend = backend

        self._indexes_of = {
            self._structure_id[v.name]: np.array(
                [self._structure_id[i] for i in graph.indexes_of(v.name)],
                dtype=np.int64,
            )
            for v in graph.views
        }
        self._gain_scratch: Optional[np.ndarray] = None
        self._csr_routed = False
        self._singles: Optional[np.ndarray] = None
        self._singles_fresh = False
        self._stage_candidates: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None
        self.reset()

    # ----------------------------------------------------------- compilation

    def _edge_arrays(self, graph):
        """Edge triples as (query_idx, structure_idx, cost) arrays."""
        if hasattr(graph, "edge_arrays"):
            return graph.edge_arrays()
        q_list, s_list, c_list = [], [], []
        for q_name, s_name, cost in graph.edges():
            q_list.append(self._query_id[q_name])
            s_list.append(self._structure_id[s_name])
            c_list.append(cost)
        return (
            np.asarray(q_list, dtype=np.int64),
            np.asarray(s_list, dtype=np.int64),
            np.asarray(c_list, dtype=np.float64),
        )

    def _build_sparse(self, n_s, n_q, s_idx, q_idx, vals) -> None:
        """Build the CSR (by structure) and CSC (by query) edge stores."""
        s_idx = np.asarray(s_idx, dtype=np.int64)
        q_idx = np.asarray(q_idx, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        # the vectorized from_cube emits edges already in strict CSR order
        # (structure-major, query-minor, no duplicates) — detect that and
        # skip the O(nnz log nnz) sort, which dominates compile time
        if s_idx.size:
            same_row = s_idx[1:] == s_idx[:-1]
            csr_ordered = bool(np.all(s_idx[1:] >= s_idx[:-1])) and bool(
                np.all(q_idx[1:][same_row] > q_idx[:-1][same_row])
            )
        else:
            csr_ordered = True
        if csr_ordered:
            s_sorted, q_sorted, v_sorted = s_idx, q_idx, vals
        else:
            order = np.lexsort((q_idx, s_idx))
            s_sorted, q_sorted, v_sorted = s_idx[order], q_idx[order], vals[order]
            dup = np.zeros(s_sorted.size, dtype=bool)
            dup[1:] = (s_sorted[1:] == s_sorted[:-1]) & (q_sorted[1:] == q_sorted[:-1])
            if dup.any():
                # parallel edges keep the minimum cost, as add_edge does
                firsts = np.flatnonzero(~dup)
                v_sorted = np.minimum.reduceat(v_sorted, firsts)
                s_sorted = s_sorted[firsts]
                q_sorted = q_sorted[firsts]
        self._nnz_rows = s_sorted.astype(np.int32)
        self._row_cols = q_sorted.astype(np.int32)
        self._row_vals = v_sorted
        counts = np.bincount(s_sorted, minlength=n_s) if s_sorted.size else np.zeros(
            n_s, dtype=np.int64
        )
        self._row_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

        if _scipy_sparse is not None and s_sorted.size:
            csc = _scipy_sparse.csr_matrix(
                (v_sorted, self._row_cols, self._row_ptr), shape=(n_s, n_q)
            ).tocsc()
            self._col_rows = csc.indices.astype(np.int32, copy=False)
            self._col_vals = np.ascontiguousarray(csc.data, dtype=np.float64)
            self._col_ptr = csc.indptr.astype(np.int64, copy=False)
        else:
            order_c = np.lexsort((s_sorted, q_sorted))
            self._col_rows = s_sorted[order_c].astype(np.int32)
            self._col_vals = v_sorted[order_c]
            counts_c = np.bincount(
                q_sorted, minlength=n_q
            ) if q_sorted.size else np.zeros(n_q, dtype=np.int64)
            self._col_ptr = np.concatenate(([0], np.cumsum(counts_c))).astype(np.int64)

    @staticmethod
    def dense_cost_bytes(n_structures: int, n_queries: int) -> int:
        """Bytes a dense float64 cost matrix of this shape would need."""
        return int(n_structures) * int(n_queries) * 8

    def fingerprint(self) -> str:
        """SHA-256 over the compiled instance (checkpoint identity).

        Covers structure names/spaces/ownership, query names, default
        costs, frequencies, and every cost edge — two engines share a
        fingerprint iff they describe the same selection problem, so a
        checkpoint can never be replayed against a different instance.
        Backend choice is deliberately excluded: dense and sparse
        engines over the same graph are interchangeable for replay.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for name in self.structure_names:
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00")
            digest.update(b"\x01")
            for name in self.query_names:
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00")
            digest.update(b"\x01")
            for arr in (
                self.spaces,
                self.is_view,
                self.view_id_of,
                self.defaults,
                self.frequencies,
                self._nnz_rows,
                self._row_cols,
                self._row_vals,
            ):
                digest.update(np.ascontiguousarray(arr).tobytes())
                digest.update(b"\x01")
            self._fingerprint = "sha256:" + digest.hexdigest()
        return self._fingerprint

    def replay_commit(self, names: Iterable[str]) -> float:
        """Commit structures by name (the checkpoint replay hook).

        Commits are deterministic — per-query best costs only take
        elementwise minima, and the maintained single-benefit cache is
        exact — so replaying a checkpoint's recorded stages in order
        reproduces the original engine state bitwise.  Returns the
        realized benefit of the committed set.
        """
        return self.commit([self.structure_id(name) for name in names])

    @property
    def cost(self) -> np.ndarray:
        """The dense cost matrix (dense backend only).

        The sparse backend never materializes it — use :meth:`cost_row`,
        :meth:`min_cost_over`, :meth:`minimum_with` or :meth:`gains_for`.
        """
        if self._dense_cost is None:
            raise RuntimeError(
                "the sparse backend has no dense cost matrix; use cost_row(), "
                "min_cost_over(), minimum_with() or gains_for() instead"
            )
        return self._dense_cost

    def route_through_csr(self) -> None:
        """Route every eager benefit evaluation through the CSR kernels.

        The dense backend's eager paths (:meth:`single_benefits` with
        ``lazy=False`` and the dense branch of :meth:`gains_for`) sum
        per-query contributions in matrix order, while :func:`csr_gains`
        — the kernel pool workers always use — sums per-edge in CSR
        order.  Both are exact up to float summation order, so they can
        differ in the last ulp.  Once any part of a run asks for workers
        (including ``workers=1``), serial scans must go through the same
        kernel so a serial stage following a pooled one (or the serial
        arm of an equivalence check) is *bitwise* identical, not just
        ulp-close.  :func:`repro.parallel.make_evaluator` calls this
        whenever a worker count is requested; the flag is one-way for
        the engine's lifetime — mixing kernels mid-run is the exact bug
        this prevents.  No-op on the sparse backend (already CSR).
        """
        self._csr_routed = True

    @property
    def uses_csr_kernels(self) -> bool:
        """True when eager benefit kernels run over the CSR store —
        always on the sparse backend, and on the dense one after
        :meth:`route_through_csr`.  Algorithms branch on this (not on
        ``backend``) when choosing between a batched CSR gain pass and a
        dense per-row loop, keeping serial and pooled scans bitwise
        aligned."""
        return self._dense_cost is None or self._csr_routed

    @property
    def nnz(self) -> int:
        """Number of stored edges."""
        return int(self._row_vals.size)

    def cost_store_bytes(self) -> int:
        """Actual bytes held by the cost store (CSR + CSC, plus the dense
        matrix when materialized)."""
        total = (
            self._nnz_rows.nbytes
            + self._row_cols.nbytes
            + self._row_vals.nbytes
            + self._row_ptr.nbytes
            + self._col_rows.nbytes
            + self._col_vals.nbytes
            + self._col_ptr.nbytes
        )
        if self._dense_cost is not None:
            total += self._dense_cost.nbytes
        return int(total)

    # ------------------------------------------------------------------ ids

    @property
    def n_queries(self) -> int:
        return len(self.query_names)

    @property
    def n_structures(self) -> int:
        return len(self.structure_names)

    def structure_id(self, name: str) -> int:
        return self._structure_id[name]

    def query_id(self, name: str) -> int:
        return self._query_id[name]

    def name_of(self, structure_id: int) -> str:
        return self.structure_names[structure_id]

    def space_of(self, ids: Iterable[int]) -> float:
        ids = np.fromiter(ids, dtype=np.int64)
        return float(self.spaces[ids].sum()) if ids.size else 0.0

    def view_ids(self) -> np.ndarray:
        """Ids of all view structures."""
        return np.flatnonzero(self.is_view)

    def index_ids_of(self, view_id: int) -> np.ndarray:
        """Ids of the indexes owned by the given view."""
        if not self.is_view[view_id]:
            raise ValueError(f"structure {self.name_of(view_id)} is not a view")
        return self._indexes_of[view_id]

    def stage_candidates(self) -> np.ndarray:
        """All structures in the canonical greedy offer order: each view
        followed by its indexes, views in id order.  Cached; combined with
        the admissibility filter in :meth:`lazy_best_single` this is the
        static candidate list for single-structure stage scans."""
        if self._stage_candidates is None:
            segments = []
            for view_id in self.view_ids():
                view_id = int(view_id)
                segments.append(np.array([view_id], dtype=np.int64))
                idx = self._indexes_of[view_id]
                if idx.size:
                    segments.append(idx.astype(np.int64, copy=False))
            self._stage_candidates = (
                np.concatenate(segments)
                if segments
                else np.empty(0, dtype=np.int64)
            )
        return self._stage_candidates

    # ------------------------------------------------------- shared export

    def shared_arrays(self) -> dict:
        """The immutable compiled arrays a parallel worker needs, by name.

        Everything a :class:`repro.parallel.worker.WorkerStore` reads:
        the CSR edge store, per-structure/per-query attributes, and the
        canonical candidate order.  The CSC store stays master-side
        (stale discovery runs there).  The returned arrays are the
        engine's own — callers copy them into shared memory and must not
        mutate them.
        """
        return {
            "row_ptr": self._row_ptr,
            "row_cols": self._row_cols,
            "row_vals": self._row_vals,
            "spaces": self.spaces,
            "frequencies": self.frequencies,
            "defaults": self.defaults,
            "is_view": self.is_view,
            "view_id_of": self.view_id_of,
            "stage_candidates": self.stage_candidates(),
        }

    # ------------------------------------------------------------- cost rows

    def cost_row(self, structure_id: int) -> np.ndarray:
        """Per-query cost of one structure (``inf`` where no edge).

        Dense backend returns a read-only view of the matrix row; sparse
        materializes the row.  Do not mutate the result.
        """
        if self._dense_cost is not None:
            return self._dense_cost[structure_id]
        row = np.full(self.n_queries, INF, dtype=np.float64)
        lo, hi = self._row_ptr[structure_id], self._row_ptr[structure_id + 1]
        row[self._row_cols[lo:hi]] = self._row_vals[lo:hi]
        return row

    def minimum_with(self, vec: np.ndarray, structure_id: int) -> np.ndarray:
        """``np.minimum(vec, cost_row(structure_id))`` without materializing
        the row on the sparse backend.  Returns a new array."""
        if self._dense_cost is not None:
            return np.minimum(vec, self._dense_cost[structure_id])
        return csr_minimum_with(
            vec, self._row_ptr, self._row_cols, self._row_vals, structure_id
        )

    def edge_cost_by_id(self, structure_id: int, query_id: int) -> float:
        """Cost of the (structure, query) edge, ``inf`` when absent."""
        if self._dense_cost is not None:
            return float(self._dense_cost[structure_id, query_id])
        lo, hi = self._row_ptr[structure_id], self._row_ptr[structure_id + 1]
        cols = self._row_cols[lo:hi]
        pos = lo + int(np.searchsorted(cols, query_id))
        if pos < hi and self._row_cols[pos] == query_id:
            return float(self._row_vals[pos])
        return INF

    # ---------------------------------------------------------------- state

    def reset(self) -> None:
        """Forget the committed selection; best costs return to defaults."""
        self._best = self.defaults.copy()
        self._selected: set = set()
        self._selected_mask = np.zeros(self.n_structures, dtype=bool)
        self._singles_fresh = False

    @property
    def selected_ids(self) -> frozenset:
        return frozenset(self._selected)

    @property
    def selected_mask(self) -> np.ndarray:
        """Boolean mask of selected structures (read-only; do not mutate)."""
        return self._selected_mask

    @property
    def selected_names(self) -> list:
        return [self.structure_names[i] for i in sorted(self._selected)]

    @property
    def best_costs(self) -> np.ndarray:
        """Current per-query best cost (a copy; safe to mutate)."""
        return self._best.copy()

    def space_used(self) -> float:
        return self.space_of(self._selected)

    def tau(self) -> float:
        """Current total (frequency-weighted) query cost τ(G, M)."""
        return float(self.frequencies @ self._best)

    def average_query_cost(self) -> float:
        """τ divided by the total query frequency."""
        total_freq = float(self.frequencies.sum())
        if total_freq == 0:
            return 0.0
        return self.tau() / total_freq

    def is_selected(self, structure_id: int) -> bool:
        return structure_id in self._selected

    # -------------------------------------------------------------- benefit

    def _as_id_array(self, ids: Iterable[int]) -> np.ndarray:
        arr = np.fromiter(ids, dtype=np.int64)
        return arr

    def min_cost_over(self, ids: Iterable[int]) -> np.ndarray:
        """Per-query minimum edge cost over the given structures
        (``inf`` where none of them answers a query)."""
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return np.full(self.n_queries, INF)
        if self._dense_cost is not None:
            return self._dense_cost[arr].min(axis=0)
        out = np.full(self.n_queries, INF, dtype=np.float64)
        for sid in arr:
            lo, hi = self._row_ptr[sid], self._row_ptr[sid + 1]
            cols = self._row_cols[lo:hi]
            out[cols] = np.minimum(out[cols], self._row_vals[lo:hi])
        return out

    def is_admissible(self, ids: Iterable[int]) -> bool:
        """True iff every index in ``ids`` has its view in ``ids`` or in
        the committed selection."""
        id_set = set(ids)
        for sid in id_set:
            if not self.is_view[sid]:
                owner = int(self.view_id_of[sid])
                if owner not in id_set and owner not in self._selected:
                    return False
        return True

    # ------------------------------------------------- single benefits (m×1)

    def _eager_singles_dense(self, ids) -> np.ndarray:
        """One matrix pass over the dense store, into a reused scratch
        buffer (no per-stage (m × q) allocation)."""
        cost = self._dense_cost
        if ids is None:
            rows_needed = cost.shape[0]
            take_ids = None
        else:
            take_ids = np.asarray(ids, dtype=np.int64)
            rows_needed = take_ids.shape[0]
        if self._gain_scratch is None or self._gain_scratch.shape[0] < rows_needed:
            self._gain_scratch = np.empty(
                (rows_needed, self.n_queries), dtype=np.float64
            )
        gains = self._gain_scratch[:rows_needed]
        if take_ids is None:
            np.subtract(self._best, cost, out=gains)
        else:
            np.take(cost, take_ids, axis=0, out=gains)
            np.subtract(self._best, gains, out=gains)
        np.maximum(gains, 0.0, out=gains)  # -inf where no edge -> 0
        return gains @ self.frequencies

    def _eager_singles_sparse(self, ids) -> np.ndarray:
        """Per-edge gains summed per structure over the CSR store."""
        if ids is None:
            contrib = self._best[self._row_cols] - self._row_vals
            np.maximum(contrib, 0.0, out=contrib)
            contrib *= self.frequencies[self._row_cols]
            return np.bincount(
                self._nnz_rows, weights=contrib, minlength=self.n_structures
            )
        return csr_gains(
            self._row_ptr,
            self._row_cols,
            self._row_vals,
            self.frequencies,
            self._best,
            ids,
        )

    def _ensure_singles(self) -> np.ndarray:
        if not self._singles_fresh:
            self._singles = self._eager_singles_sparse(None)
            self._singles_fresh = True
        return self._singles

    def stale_structures_after(self, old_best: np.ndarray) -> np.ndarray:
        """Structures whose standalone benefit may have changed since the
        best-cost vector was ``old_best`` (sorted unique ids).

        A structure is stale only when one of its edges into a *dirty*
        query (best cost dropped) was *beating* the old best cost there:
        an edge with ``cost >= old_best`` contributed exactly zero before
        and (the best only drops) still does, so the cached sum — the
        same addends in the same order — is bitwise unchanged.  This is
        the discovery half of the maintained single-benefit cache; the
        parallel evaluator calls it after every commit to route refresh
        work to worker shards.
        """
        dirty = np.flatnonzero(self._best < old_best)
        if dirty.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._col_ptr[dirty]
        lengths = self._col_ptr[dirty + 1] - starts
        flat = _gather_ranges(starts, lengths)
        if flat.size == 0:
            return np.empty(0, dtype=np.int64)
        beating = self._col_vals[flat] < np.repeat(old_best[dirty], lengths)
        if not beating.any():
            return np.empty(0, dtype=np.int64)
        return np.unique(self._col_rows[flat[beating]]).astype(np.int64)

    def _refresh_singles_after(self, old_best: np.ndarray) -> None:
        """Incrementally re-score only structures touched by queries whose
        best cost just dropped (see :meth:`stale_structures_after`)."""
        stale = self.stale_structures_after(old_best)
        if stale.size:
            self._singles[stale] = self._eager_singles_sparse(stale)

    def invalidate(self, ids=None) -> None:
        """Drop (or selectively refresh) the maintained single-benefit cache.

        ``ids=None`` discards the whole cache — the next lazy call pays a
        full recompute.  With ``ids``, those rows are re-scored in place
        when the cache is live (no-op otherwise).  Algorithms normally
        never need this — :meth:`commit`, :meth:`reset` and
        :meth:`restore` keep the cache consistent — but external
        mutations of engine state should call it.
        """
        if ids is None:
            self._singles_fresh = False
        elif self._singles_fresh:
            arr = np.asarray(list(ids), dtype=np.int64)
            if arr.size:
                self._singles[arr] = self._eager_singles_sparse(arr)

    def single_benefits(self, ids=None, lazy: Optional[bool] = None) -> np.ndarray:
        """Benefit of each structure *alone* w.r.t. the committed selection.

        ``ids`` restricts the computation to the given structure ids
        (array-like); ``None`` evaluates all structures.  Missing edges
        contribute zero, as they must.

        ``lazy=None`` picks the backend default (sparse → maintained
        incremental cache, dense → eager matrix pass); ``lazy=True``
        forces the maintained cache, ``lazy=False`` a full recompute.
        """
        if lazy is None:
            lazy = self._dense_cost is None
        if lazy:
            singles = self._ensure_singles()
            if ids is None:
                return singles.copy()
            return singles[np.asarray(ids, dtype=np.int64)]
        if self._dense_cost is not None and not self._csr_routed:
            return self._eager_singles_dense(ids)
        return self._eager_singles_sparse(ids)

    def lazy_best_single(self, ids, space_left: Optional[float] = None):
        """Best single candidate by benefit per space, from the maintained
        incremental cache — the lazy replacement for a full eager stage scan.

        Scans ``ids`` with the canonical greedy rule (first candidate at a
        strictly better ratio wins, tolerance :data:`RATIO_RTOL`), skipping
        selected structures, inadmissible indexes (owning view not yet
        selected), non-positive benefits and — when ``space_left`` is
        given — candidates that do not fit.  Returns
        ``(structure_id, benefit, space, ratio)`` or ``None``.
        """
        return self.best_single(ids, space_left=space_left, lazy=True)

    def best_single(
        self, ids, space_left: Optional[float] = None, lazy: bool = True
    ):
        """Canonical single-structure stage pick over ``ids``.

        Same offer stream and tie-break either way; ``lazy=True`` reads
        the maintained cache, ``lazy=False`` recomputes the benefits
        eagerly (the two agree bitwise on the sparse backend — the cache
        invariant — and up to kernel summation order on the dense one).
        Returns ``(structure_id, benefit, space, ratio)`` or ``None``.
        """
        arr = np.asarray(ids, dtype=np.int64)
        if arr.size == 0:
            return None
        if lazy:
            benefits = self._ensure_singles()[arr]
        else:
            benefits = self.single_benefits(arr, lazy=False)
        spaces = self.spaces[arr]
        eligible = (benefits > 0.0) & ~self._selected_mask[arr]
        eligible &= self.is_view[arr] | self._selected_mask[self.view_id_of[arr]]
        if space_left is not None:
            eligible &= spaces <= space_left + 1e-9
        if not eligible.any():
            return None
        pos = np.flatnonzero(eligible)
        ratios = benefits[pos] / spaces[pos]
        win = chain_pick(ratios)
        if win is None:
            return None
        p = pos[win]
        return int(arr[p]), float(benefits[p]), float(spaces[p]), float(ratios[win])

    @property
    def prefers_lazy(self) -> bool:
        """True when algorithms should default to the lazy stage loops.

        The lazy loops are exact (same candidate order and tie-break as
        the eager scans, skipping only provably no-op work) and measured
        faster on both backends, so this is always ``True``; it exists so
        a subclass or an experiment can opt a whole engine out.
        """
        return True

    def gains_for(self, ids, base: np.ndarray) -> np.ndarray:
        """Frequency-weighted positive gain of each structure against the
        per-query cost vector ``base`` (one vectorized pass)."""
        arr = np.asarray(ids, dtype=np.int64)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        if self._dense_cost is not None and not self._csr_routed:
            gains_matrix = base - self._dense_cost[arr]
            np.maximum(gains_matrix, 0.0, out=gains_matrix)
            return gains_matrix @ self.frequencies
        return csr_gains(
            self._row_ptr, self._row_cols, self._row_vals, self.frequencies, base, arr
        )

    # ---------------------------------------------------------- set benefits

    def benefit_of(self, ids: Iterable[int]) -> float:
        """Benefit of the candidate set w.r.t. the committed selection.

        The caller is responsible for admissibility (use
        :meth:`is_admissible`); the value returned is the τ reduction if
        the whole set were committed now.
        """
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return 0.0
        candidate = self.min_cost_over(arr)
        improved = np.minimum(self._best, candidate)
        return float(self.frequencies @ (self._best - improved))

    def benefit_per_space(self, ids: Iterable[int]) -> float:
        """Benefit per unit space of the candidate set w.r.t. selection."""
        ids = list(ids)
        space = self.space_of(ids)
        if space <= 0:
            raise ValueError("candidate set must occupy positive space")
        return self.benefit_of(ids) / space

    def commit(self, ids: Iterable[int]) -> float:
        """Materialize the structures; returns the realized benefit.

        Raises ``ValueError`` if an index would be committed without its
        owning view (either previously selected or in the same call).
        Keeps the maintained single-benefit cache consistent by re-scoring
        only the structures touched by dirty queries.
        """
        ids = list(ids)
        if not self.is_admissible(ids):
            raise ValueError(
                "cannot commit an index before its view: "
                + ", ".join(self.name_of(i) for i in ids)
            )
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return 0.0
        candidate = self.min_cost_over(arr)
        improved = np.minimum(self._best, candidate)
        benefit = float(self.frequencies @ (self._best - improved))
        old_best = self._best
        self._best = improved
        self._selected.update(int(i) for i in arr)
        self._selected_mask[arr] = True
        if self._singles_fresh:
            self._refresh_singles_after(old_best)
        return benefit

    # ---------------------------------------------- snapshots (backtracking)

    def snapshot(self) -> tuple:
        """Capture current state; pass to :meth:`restore` to roll back."""
        return self._best.copy(), set(self._selected)

    def restore(self, snapshot: tuple) -> None:
        best, selected = snapshot
        self._best = best.copy()
        self._selected = set(selected)
        self._selected_mask = np.zeros(self.n_structures, dtype=bool)
        if self._selected:
            self._selected_mask[np.fromiter(self._selected, dtype=np.int64)] = True
        self._singles_fresh = False

    # ------------------------------------------------------------- reporting

    def absolute_benefit(self, ids: Iterable[int]) -> float:
        """Benefit of the set w.r.t. the *empty* selection, B(C, ∅),
        leaving the engine state untouched."""
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return 0.0
        candidate = self.min_cost_over(arr)
        improved = np.minimum(self.defaults, candidate)
        return float(self.frequencies @ (self.defaults - improved))

    def max_achievable_benefit(self) -> float:
        """Benefit of materializing everything — an upper bound for any
        selection (computed against default costs)."""
        if self._dense_cost is not None:
            floor = self._dense_cost.min(axis=0)
        else:
            floor = np.full(self.n_queries, INF, dtype=np.float64)
            np.minimum.at(floor, self._row_cols, self._row_vals)
        improved = np.minimum(self.defaults, floor)
        return float(self.frequencies @ (self.defaults - improved))

    def __repr__(self) -> str:
        return (
            f"BenefitEngine(structures={self.n_structures}, "
            f"queries={self.n_queries}, edges={self.nnz}, "
            f"backend={self.backend!r}, selected={len(self._selected)}, "
            f"tau={self.tau():g})"
        )
