"""Benefit evaluation for sets of structures (Section 5.2 of the paper).

Given a query-view graph ``G`` and a set ``M`` of materialized structures,
the total query cost is

    τ(G, M) = Σ_i f_i · min(T_i, min over usable (view, index) in M of t)

and the *benefit* of a candidate set ``C`` w.r.t. ``M`` is
``B(C, M) = τ(G, M) − τ(G, M ∪ C)``.  Every selection algorithm in
:mod:`repro.algorithms` evaluates thousands of such benefits, so this
module compiles the graph to dense numpy arrays once and keeps the current
per-query best cost as state, making a benefit evaluation a single
vectorized pass.

An index is *usable* only when its owning view is materialized; the engine
exposes :meth:`BenefitEngine.is_admissible` so algorithms can enforce the
rule, and raises on attempts to commit an index without its view.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.qvgraph import QueryViewGraph

INF = float("inf")


class BenefitEngine:
    """Compiled, stateful benefit evaluator over a query-view graph.

    The engine assigns every structure an integer id (``0..m-1``) and every
    query an integer id (``0..q-1``).  ``cost[s, q]`` is the cost of
    answering query ``q`` via structure ``s`` (``inf`` when there is no
    edge).  State is the vector of current best per-query costs given the
    committed selection, initialized to the default costs ``T_i``.
    """

    def __init__(self, graph: QueryViewGraph):
        self.graph = graph
        self.query_names = [q.name for q in graph.queries]
        self.structure_names = [s.name for s in graph.structures]
        self._query_id = {name: i for i, name in enumerate(self.query_names)}
        self._structure_id = {name: i for i, name in enumerate(self.structure_names)}

        n_q = len(self.query_names)
        n_s = len(self.structure_names)
        self.defaults = np.array(
            [q.default_cost for q in graph.queries], dtype=np.float64
        )
        self.frequencies = np.array(
            [q.frequency for q in graph.queries], dtype=np.float64
        )
        self.spaces = np.array([s.space for s in graph.structures], dtype=np.float64)
        self.is_view = np.array([s.is_view for s in graph.structures], dtype=bool)
        self.view_id_of = np.array(
            [self._structure_id[s.view_name] for s in graph.structures], dtype=np.int64
        )
        self.cost = np.full((n_s, n_q), INF, dtype=np.float64)
        for q_name, s_name, cost in graph.edges():
            self.cost[self._structure_id[s_name], self._query_id[q_name]] = cost

        self._indexes_of = {
            self._structure_id[v.name]: np.array(
                [self._structure_id[i] for i in graph.indexes_of(v.name)],
                dtype=np.int64,
            )
            for v in graph.views
        }
        self.reset()

    # ------------------------------------------------------------------ ids

    @property
    def n_queries(self) -> int:
        return len(self.query_names)

    @property
    def n_structures(self) -> int:
        return len(self.structure_names)

    def structure_id(self, name: str) -> int:
        return self._structure_id[name]

    def query_id(self, name: str) -> int:
        return self._query_id[name]

    def name_of(self, structure_id: int) -> str:
        return self.structure_names[structure_id]

    def space_of(self, ids: Iterable[int]) -> float:
        ids = np.fromiter(ids, dtype=np.int64)
        return float(self.spaces[ids].sum()) if ids.size else 0.0

    def view_ids(self) -> np.ndarray:
        """Ids of all view structures."""
        return np.flatnonzero(self.is_view)

    def index_ids_of(self, view_id: int) -> np.ndarray:
        """Ids of the indexes owned by the given view."""
        if not self.is_view[view_id]:
            raise ValueError(f"structure {self.name_of(view_id)} is not a view")
        return self._indexes_of[view_id]

    # ---------------------------------------------------------------- state

    def reset(self) -> None:
        """Forget the committed selection; best costs return to defaults."""
        self._best = self.defaults.copy()
        self._selected: set = set()

    @property
    def selected_ids(self) -> frozenset:
        return frozenset(self._selected)

    @property
    def selected_names(self) -> list:
        return [self.structure_names[i] for i in sorted(self._selected)]

    @property
    def best_costs(self) -> np.ndarray:
        """Current per-query best cost (a copy; safe to mutate)."""
        return self._best.copy()

    def space_used(self) -> float:
        return self.space_of(self._selected)

    def tau(self) -> float:
        """Current total (frequency-weighted) query cost τ(G, M)."""
        return float(self.frequencies @ self._best)

    def average_query_cost(self) -> float:
        """τ divided by the total query frequency."""
        total_freq = float(self.frequencies.sum())
        if total_freq == 0:
            return 0.0
        return self.tau() / total_freq

    def is_selected(self, structure_id: int) -> bool:
        return structure_id in self._selected

    # -------------------------------------------------------------- benefit

    def _as_id_array(self, ids: Iterable[int]) -> np.ndarray:
        arr = np.fromiter(ids, dtype=np.int64)
        return arr

    def min_cost_over(self, ids: Iterable[int]) -> np.ndarray:
        """Per-query minimum edge cost over the given structures
        (``inf`` where none of them answers a query)."""
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return np.full(self.n_queries, INF)
        return self.cost[arr].min(axis=0)

    def is_admissible(self, ids: Iterable[int]) -> bool:
        """True iff every index in ``ids`` has its view in ``ids`` or in
        the committed selection."""
        id_set = set(ids)
        for sid in id_set:
            if not self.is_view[sid]:
                owner = int(self.view_id_of[sid])
                if owner not in id_set and owner not in self._selected:
                    return False
        return True

    def single_benefits(self, ids=None) -> np.ndarray:
        """Benefit of each structure *alone* w.r.t. the committed selection.

        Vectorized over structures: one matrix pass instead of a Python
        loop — the hot path of every greedy stage.  ``ids`` restricts the
        computation to the given structure ids (array-like); ``None``
        evaluates all structures.  Missing edges (``inf`` cost) contribute
        zero, as they must.
        """
        rows = self.cost if ids is None else self.cost[np.asarray(ids, dtype=np.int64)]
        gains = self._best - rows  # -inf where no edge
        np.maximum(gains, 0.0, out=gains)
        return gains @ self.frequencies

    def benefit_of(self, ids: Iterable[int]) -> float:
        """Benefit of the candidate set w.r.t. the committed selection.

        The caller is responsible for admissibility (use
        :meth:`is_admissible`); the value returned is the τ reduction if
        the whole set were committed now.
        """
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return 0.0
        candidate = self.cost[arr].min(axis=0)
        improved = np.minimum(self._best, candidate)
        return float(self.frequencies @ (self._best - improved))

    def benefit_per_space(self, ids: Iterable[int]) -> float:
        """Benefit per unit space of the candidate set w.r.t. selection."""
        ids = list(ids)
        space = self.space_of(ids)
        if space <= 0:
            raise ValueError("candidate set must occupy positive space")
        return self.benefit_of(ids) / space

    def commit(self, ids: Iterable[int]) -> float:
        """Materialize the structures; returns the realized benefit.

        Raises ``ValueError`` if an index would be committed without its
        owning view (either previously selected or in the same call).
        """
        ids = list(ids)
        if not self.is_admissible(ids):
            raise ValueError(
                "cannot commit an index before its view: "
                + ", ".join(self.name_of(i) for i in ids)
            )
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return 0.0
        candidate = self.cost[arr].min(axis=0)
        improved = np.minimum(self._best, candidate)
        benefit = float(self.frequencies @ (self._best - improved))
        self._best = improved
        self._selected.update(int(i) for i in arr)
        return benefit

    # ---------------------------------------------- snapshots (backtracking)

    def snapshot(self) -> tuple:
        """Capture current state; pass to :meth:`restore` to roll back."""
        return self._best.copy(), set(self._selected)

    def restore(self, snapshot: tuple) -> None:
        best, selected = snapshot
        self._best = best.copy()
        self._selected = set(selected)

    # ------------------------------------------------------------- reporting

    def absolute_benefit(self, ids: Iterable[int]) -> float:
        """Benefit of the set w.r.t. the *empty* selection, B(C, ∅),
        leaving the engine state untouched."""
        arr = self._as_id_array(ids)
        if arr.size == 0:
            return 0.0
        candidate = self.cost[arr].min(axis=0)
        improved = np.minimum(self.defaults, candidate)
        return float(self.frequencies @ (self.defaults - improved))

    def max_achievable_benefit(self) -> float:
        """Benefit of materializing everything — an upper bound for any
        selection (computed against default costs)."""
        improved = np.minimum(self.defaults, self.cost.min(axis=0))
        return float(self.frequencies @ (self.defaults - improved))

    def __repr__(self) -> str:
        return (
            f"BenefitEngine(structures={self.n_structures}, "
            f"queries={self.n_queries}, selected={len(self._selected)}, "
            f"tau={self.tau():g})"
        )
