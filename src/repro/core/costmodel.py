"""The linear cost model of Section 4 of the paper.

The cost of answering a query is the number of rows of the chosen view's
table that must be processed.  With a usable index the row count shrinks to
the view's size divided by the number of distinct values of the usable
prefix of the index key:

    c(Q, V, J) = |C| / |E|

where ``C`` is the view's attribute set, ``J = I_D(V)`` and ``E`` is the
largest prefix of ``D`` consisting only of selection attributes of ``Q``.
``|E|`` is the number of rows of the view grouping by exactly ``E`` — in a
data cube that is the size of the subcube ``E``, so a :class:`CubeLattice`
supplies every quantity the formula needs.  When ``E`` is empty the full
view must be scanned and the cost is ``|C|`` (the formula still applies
because the empty view has one row).
"""

from __future__ import annotations

from typing import Optional

from repro.core.index import Index
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery
from repro.core.view import View


class LinearCostModel:
    """Row-count costs for answering slice queries on a cube lattice.

    Parameters
    ----------
    lattice:
        Supplies the size of every subcube, including the prefix subcubes
        ``E`` appearing in the denominator of the cost formula.
    default_view:
        The view consulted when a query is answered from raw data (the
        default cost ``T_i`` of Section 5.1).  Defaults to the lattice's
        top view.

    >>> # the paper's Section 4.1.1 worked example: Q = γ_p σ_s on view psc
    >>> # with index I_scp costs |psc| / |s| rows.
    """

    def __init__(self, lattice: CubeLattice, default_view: Optional[View] = None):
        self.lattice = lattice
        self.default_view = default_view if default_view is not None else lattice.top

    @classmethod
    def from_fact(cls, fact) -> "LinearCostModel":
        """Cost model over the *exact* lattice of a materialized fact table.

        Every view's size is measured as the fact table's distinct count
        of its attributes — the true row count of the materialized view —
        so the model's ``|C| / |E|`` predictions are falsifiable against
        the executor's actual rows-processed numbers (and on a dense cube
        they match exactly, query by query).  ``fact`` is a
        :class:`~repro.engine.table.FactTable`.
        """
        lattice = CubeLattice.from_estimator(
            fact.schema,
            lambda view: float(fact.distinct_count(fact.schema.sort_attrs(view.attrs))),
        )
        return cls(lattice)

    def cost(
        self,
        query: SliceQuery,
        view: View,
        index: Optional[Index] = None,
    ) -> float:
        """Rows processed answering ``query`` with ``view`` (and ``index``).

        Raises ``ValueError`` if the view cannot answer the query or the
        index is not an index on ``view``.
        """
        if not query.answerable_by(view):
            raise ValueError(f"{query} is not answerable by view {view}")
        view_rows = self.lattice.size(view)
        if index is None:
            return view_rows
        if index.view != view:
            raise ValueError(f"{index} is not an index on view {view}")
        prefix = index.usable_prefix(query)
        if not prefix:
            return view_rows
        prefix_rows = self.lattice.size(View(prefix))
        # a view never has fewer rows than any of its projections, so the
        # ratio is >= 1; guard against inconsistent user-supplied sizes.
        return max(1.0, view_rows / prefix_rows)

    def best_cost(self, query: SliceQuery, view: View, indexes=()) -> float:
        """Cheapest way to answer ``query`` using ``view`` and any one of
        the given indexes (or no index)."""
        best = self.cost(query, view)
        for index in indexes:
            best = min(best, self.cost(query, view, index))
        return best

    def default_cost(self, query: SliceQuery) -> float:
        """Cost of answering ``query`` from raw data (no precomputation).

        This is ``T_i`` in the paper's problem definition: the raw data
        table is scanned in full.
        """
        if not query.answerable_by(self.default_view):
            raise ValueError(
                f"{query} is not answerable by the default view {self.default_view}"
            )
        return self.lattice.size(self.default_view)

    def __repr__(self) -> str:
        return f"LinearCostModel(default_view={self.default_view})"
