"""Views (subcubes) of a data cube.

A *view* is identified by the set of dimensions in its ``GROUP BY`` clause
(Section 3.1 of the paper).  The subcube grouping by ``{part, supplier}`` is
written ``ps`` when the dimensions have single-letter abbreviations.  The
order of attributes in a view is irrelevant; only the set matters.

Views form a lattice under the *dependence relation* ``V1 <= V2`` iff
``attrs(V1) >= attrs(V2)`` (Section 3.4): a view can be computed from any
view whose attribute set is a superset of its own.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class View:
    """An aggregate view (subcube), identified by its group-by attributes.

    Instances are immutable, hashable, and compare equal iff their attribute
    sets are equal.  The empty view (grouping by nothing — the single grand
    total row, written ``none`` in the paper) is ``View.none()``.

    >>> ps = View(["p", "s"])
    >>> ps == View(["s", "p"])
    True
    >>> str(ps)
    'ps'
    >>> str(View([]))
    'none'
    """

    __slots__ = ("_attrs", "_key", "_hash")

    def __init__(self, attrs: Iterable[str]):
        attrs = frozenset(attrs)
        for attr in attrs:
            if not isinstance(attr, str) or not attr:
                raise ValueError(f"view attributes must be non-empty strings, got {attr!r}")
        self._attrs = attrs
        self._key = tuple(sorted(attrs))
        self._hash = hash(self._key)

    @classmethod
    def of(cls, *attrs: str) -> "View":
        """Build a view from attribute names given as arguments.

        >>> View.of("p", "s") == View(["s", "p"])
        True
        """
        return cls(attrs)

    @classmethod
    def none(cls) -> "View":
        """The empty view: aggregation over all dimensions (one row)."""
        return cls(())

    @property
    def attrs(self) -> frozenset:
        """The set of group-by attributes."""
        return self._attrs

    @property
    def key(self) -> tuple:
        """Attributes as a canonical sorted tuple (stable across runs)."""
        return self._key

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._key)

    def __contains__(self, attr: str) -> bool:
        return attr in self._attrs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "View") -> bool:
        """Computability order: ``self <= other`` iff ``self`` can be
        computed from ``other``, i.e. ``attrs(self) ⊆ attrs(other)``.

        This matches the intuitive reading "self is below other in
        Figure 1".  (The paper writes the same order with the opposite
        symbol: its ``V1 ⪯ V2`` holds iff ``attrs(V1) ⊇ attrs(V2)``.)
        """
        if not isinstance(other, View):
            return NotImplemented
        return self._attrs <= other._attrs

    def __lt__(self, other: "View") -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._attrs < other._attrs

    def __ge__(self, other: "View") -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._attrs >= other._attrs

    def __gt__(self, other: "View") -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._attrs > other._attrs

    def can_compute(self, other: "View") -> bool:
        """True if ``other`` is computable from ``self`` (attrs ⊇)."""
        return self._attrs >= other._attrs

    def union(self, other: "View") -> "View":
        """Least view able to compute both ``self`` and ``other``."""
        return View(self._attrs | other._attrs)

    def intersection(self, other: "View") -> "View":
        """Greatest view computable from both ``self`` and ``other``."""
        return View(self._attrs & other._attrs)

    def __str__(self) -> str:
        if not self._attrs:
            return "none"
        if all(len(a) == 1 for a in self._key):
            return "".join(self._key)
        return ",".join(self._key)

    def __repr__(self) -> str:
        return f"View({str(self)})"


def parse_view(text: str) -> View:
    """Parse a view written in the paper's compact notation.

    ``"ps"`` means ``{p, s}`` when there are no commas; ``"part,customer"``
    splits on commas; ``"none"`` or ``""`` is the empty view.

    >>> parse_view("ps") == View.of("p", "s")
    True
    >>> parse_view("part,customer") == View.of("part", "customer")
    True
    >>> parse_view("none") == View.none()
    True
    """
    text = text.strip()
    if text in ("", "none", "()"):
        return View.none()
    if "," in text:
        return View(part.strip() for part in text.split(","))
    return View(text)
