"""The view lattice of a data cube (Section 3.4 of the paper).

The ``2^n`` subcubes of an ``n``-dimensional cube form a lattice under the
dependence relation: view ``A`` can be computed from view ``B`` iff
``attrs(A) ⊆ attrs(B)``.  A :class:`CubeLattice` bundles the schema, the
set of all views, and the number of rows (the *size*) of every view.

Sizes may be supplied exactly (as in the paper's Figure 1 TPC-D example),
or estimated with the analytical/sampling machinery in
:mod:`repro.estimation.sizes`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterator, Mapping

from repro.core.view import View
from repro.cube.schema import CubeSchema


class CubeLattice:
    """All ``2^n`` views of a cube, with a size (row count) for each.

    Parameters
    ----------
    schema:
        The cube schema (dimension names and cardinalities).
    sizes:
        Mapping from :class:`View` to its number of rows.  Must contain an
        entry for *every* view of the lattice.  The empty view always has
        size 1 (the grand-total row); if absent it is filled in.

    >>> from repro.cube.schema import CubeSchema, Dimension
    >>> schema = CubeSchema([Dimension("a", 10), Dimension("b", 20)])
    >>> sizes = {View.of("a", "b"): 150, View.of("a"): 10,
    ...          View.of("b"): 20, View.none(): 1}
    >>> lattice = CubeLattice(schema, sizes)
    >>> lattice.size(View.of("a"))
    10
    >>> len(list(lattice.views()))
    4
    """

    def __init__(self, schema: CubeSchema, sizes: Mapping[View, float]):
        self.schema = schema
        self._views = tuple(
            View(combo)
            for r in range(schema.n_dims + 1)
            for combo in combinations(schema.names, r)
        )
        sizes = dict(sizes)
        sizes.setdefault(View.none(), 1)
        missing = [v for v in self._views if v not in sizes]
        if missing:
            raise ValueError(
                f"sizes missing for {len(missing)} views, e.g. {missing[0]}"
            )
        for view, size in sizes.items():
            if size < 1:
                raise ValueError(f"view {view} has size {size} < 1")
        self._sizes = {v: sizes[v] for v in self._views}

    @classmethod
    def from_estimator(
        cls,
        schema: CubeSchema,
        estimator: Callable[[View], float],
    ) -> "CubeLattice":
        """Build a lattice, obtaining each view's size from ``estimator``."""
        views = (
            View(combo)
            for r in range(schema.n_dims + 1)
            for combo in combinations(schema.names, r)
        )
        return cls(schema, {v: estimator(v) for v in views})

    # ----------------------------------------------------------------- views

    @property
    def n_dims(self) -> int:
        return self.schema.n_dims

    @property
    def top(self) -> View:
        """The raw-data view, grouping by all dimensions."""
        return self._views[-1]

    @property
    def bottom(self) -> View:
        """The empty view ``none`` (one grand-total row)."""
        return self._views[0]

    def views(self) -> Iterator[View]:
        """All ``2^n`` views, in nondecreasing order of dimensionality."""
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, view: View) -> bool:
        return view in self._sizes

    def __iter__(self) -> Iterator[View]:
        return iter(self._views)

    # ----------------------------------------------------------------- sizes

    def size(self, view: View) -> float:
        """Number of rows in the materialized table for ``view``."""
        try:
            return self._sizes[view]
        except KeyError:
            raise KeyError(f"{view} is not a view of this lattice") from None

    def sizes(self) -> dict:
        """A copy of the full ``{view: rows}`` mapping."""
        return dict(self._sizes)

    def total_size(self) -> float:
        """Total rows if every view were materialized (no indexes)."""
        return sum(self._sizes.values())

    # ------------------------------------------------------------- structure

    def ancestors(self, view: View, strict: bool = False) -> list:
        """Views from which ``view`` can be computed (attrs ⊇ view.attrs).

        With ``strict=True``, ``view`` itself is excluded.
        """
        result = [v for v in self._views if v.attrs >= view.attrs]
        if strict:
            result = [v for v in result if v != view]
        return result

    def descendants(self, view: View, strict: bool = False) -> list:
        """Views computable from ``view`` (attrs ⊆ view.attrs)."""
        result = [v for v in self._views if v.attrs <= view.attrs]
        if strict:
            result = [v for v in result if v != view]
        return result

    def parents(self, view: View) -> list:
        """Immediate ancestors: views with exactly one extra attribute."""
        extra = set(self.schema.names) - view.attrs
        return [View(view.attrs | {a}) for a in sorted(extra)]

    def children(self, view: View) -> list:
        """Immediate descendants: views with exactly one attribute removed."""
        return [View(view.attrs - {a}) for a in sorted(view.attrs)]

    def level(self, r: int) -> list:
        """All views with exactly ``r`` group-by attributes."""
        if not 0 <= r <= self.n_dims:
            raise ValueError(f"level must be in [0, {self.n_dims}], got {r}")
        return [v for v in self._views if len(v) == r]

    def label(self, view: View) -> str:
        """Paper-style label with attributes in schema order (``psc``,
        ``part,customer``, ``none``)."""
        if view not in self._sizes:
            raise KeyError(f"{view} is not a view of this lattice")
        if not view.attrs:
            return "none"
        attrs = self.schema.sort_attrs(view.attrs)
        if all(len(a) == 1 for a in attrs):
            return "".join(attrs)
        return ",".join(attrs)

    def index_label(self, index) -> str:
        """Paper-style index label, e.g. ``I_sp(ps)``."""
        key = index.key
        joined = "".join(key) if all(len(a) == 1 for a in key) else ",".join(key)
        return f"I_{joined}({self.label(index.view)})"

    def to_networkx(self):
        """Export the Hasse diagram as a ``networkx.DiGraph``.

        Edges point from each view to its children (the views it can
        compute with one fewer attribute).  Node attribute ``rows`` holds
        the view size.  Requires :mod:`networkx` (optional dependency).
        """
        import networkx as nx

        graph = nx.DiGraph()
        for view in self._views:
            graph.add_node(view, rows=self._sizes[view])
        for view in self._views:
            for child in self.children(view):
                graph.add_edge(view, child)
        return graph

    def __repr__(self) -> str:
        return (
            f"CubeLattice(n_dims={self.n_dims}, views={len(self._views)}, "
            f"top={self.top} [{self._sizes[self.top]:g} rows])"
        )
