"""Dimension hierarchies — the [HRU96] generalization of the lattice.

The paper's model (Section 3) treats each dimension as flat: it is either
present in a view or aggregated away.  Real OLAP dimensions carry
hierarchies — ``day → month → year → ALL``, ``customer → nation → ALL`` —
and [HRU96] shows the same lattice framework applies: a view chooses one
level per dimension, and view ``A`` is computable from view ``B`` iff, on
every dimension, ``A``'s level is equal to or *coarser* than ``B``'s.
The flat cube is the special case of two-level hierarchies
(``attribute → ALL``).

This module provides the hierarchical model and a bridge to the rest of
the system: :func:`hierarchical_lattice_graph` enumerates the product
lattice, sizes every view with the analytical model, generates the slice
queries and fat indexes for each view's level attributes, and emits a
standard :class:`~repro.core.qvgraph.QueryViewGraph` — so every selection
algorithm in :mod:`repro.algorithms` works on hierarchical cubes
unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations, permutations, product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.qvgraph import QueryViewGraph
from repro.estimation.sizes import expected_distinct

#: Level index meaning "aggregated over this dimension entirely".
ALL = -1


@dataclass(frozen=True)
class Level:
    """One level of a dimension hierarchy.

    Attributes
    ----------
    name:
        Level attribute name, e.g. ``"day"`` or ``"month"``.
    cardinality:
        Number of distinct values at this level.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("level name must be non-empty")
        if self.cardinality < 1:
            raise ValueError(
                f"level {self.name!r} must have cardinality >= 1, "
                f"got {self.cardinality}"
            )


class Hierarchy:
    """A dimension with a chain of levels, finest first.

    ``Hierarchy("time", [Level("day", 365), Level("month", 12),
    Level("year", 1)])`` orders day → month → year; every hierarchy
    implicitly ends in ALL (the dimension aggregated away).  Cardinality
    must be nonincreasing from fine to coarse.
    """

    def __init__(self, name: str, levels: Sequence[Level]):
        if not name:
            raise ValueError("hierarchy name must be non-empty")
        if not levels:
            raise ValueError(f"hierarchy {name!r} needs at least one level")
        names = [lvl.name for lvl in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"hierarchy {name!r} has duplicate level names")
        for fine, coarse in zip(levels, levels[1:]):
            if coarse.cardinality > fine.cardinality:
                raise ValueError(
                    f"hierarchy {name!r}: level {coarse.name!r} is coarser than "
                    f"{fine.name!r} but has higher cardinality"
                )
        self.name = name
        self.levels = tuple(levels)

    @classmethod
    def flat(cls, name: str, cardinality: int) -> "Hierarchy":
        """A flat dimension: a single level named after the dimension."""
        return cls(name, [Level(name, cardinality)])

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def level(self, index: int) -> Level:
        if index == ALL:
            raise ValueError("ALL has no Level object")
        return self.levels[index]

    def level_index(self, level_name: str) -> int:
        for i, lvl in enumerate(self.levels):
            if lvl.name == level_name:
                return i
        raise KeyError(f"hierarchy {self.name!r} has no level {level_name!r}")

    def coarsens(self, coarse: int, fine: int) -> bool:
        """True iff level ``coarse`` is computable from level ``fine``.

        ALL is computable from every level; otherwise coarser means a
        larger index in the chain (or equal).
        """
        if coarse == ALL:
            return True
        if fine == ALL:
            return False
        return coarse >= fine

    def __repr__(self) -> str:
        chain = " → ".join(f"{l.name}({l.cardinality})" for l in self.levels)
        return f"Hierarchy({self.name}: {chain} → ALL)"


class HierarchicalView:
    """A view of a hierarchical cube: one level index per dimension.

    ``levels[i]`` is the level of dimension ``i`` (``ALL`` = aggregated
    away).  Immutable and hashable.
    """

    __slots__ = ("levels", "_hash")

    def __init__(self, levels: Sequence[int]):
        self.levels = tuple(int(l) for l in levels)
        self._hash = hash(self.levels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchicalView):
            return NotImplemented
        return self.levels == other.levels

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"HierarchicalView{self.levels}"


class HierarchicalCube:
    """An n-dimensional cube whose dimensions carry hierarchies.

    Parameters
    ----------
    hierarchies:
        One :class:`Hierarchy` per dimension.
    raw_rows:
        Number of raw fact rows (sizes every view analytically via the
        expected-distinct model, like Section 6's cube generation).

    >>> cube = HierarchicalCube(
    ...     [Hierarchy("c", [Level("cust", 100), Level("nation", 10)]),
    ...      Hierarchy.flat("p", 50)],
    ...     raw_rows=2_000)
    >>> len(list(cube.views()))           # (2+1) * (1+1)
    6
    """

    def __init__(self, hierarchies: Sequence[Hierarchy], raw_rows: float):
        if not hierarchies:
            raise ValueError("need at least one dimension")
        names = [h.name for h in hierarchies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        level_names: List[str] = []
        for h in hierarchies:
            level_names.extend(lvl.name for lvl in h.levels)
        if len(set(level_names)) != len(level_names):
            raise ValueError(f"level names must be globally unique: {level_names}")
        if raw_rows < 1:
            raise ValueError("raw_rows must be >= 1")
        self.hierarchies = tuple(hierarchies)
        self.raw_rows = float(raw_rows)

    @property
    def n_dims(self) -> int:
        return len(self.hierarchies)

    # ----------------------------------------------------------- views

    def top(self) -> HierarchicalView:
        """The finest view: level 0 on every dimension (the raw data)."""
        return HierarchicalView([0] * self.n_dims)

    def views(self) -> Iterator[HierarchicalView]:
        """All ``prod(n_levels_i + 1)`` views of the product lattice."""
        choices = [
            list(range(h.n_levels)) + [ALL] for h in self.hierarchies
        ]
        for combo in product(*choices):
            yield HierarchicalView(combo)

    def n_views(self) -> int:
        return math.prod(h.n_levels + 1 for h in self.hierarchies)

    def computable(self, target: HierarchicalView, source: HierarchicalView) -> bool:
        """True iff ``target`` can be computed from ``source``: on every
        dimension, the target level is equal or coarser."""
        return all(
            h.coarsens(t, s)
            for h, t, s in zip(self.hierarchies, target.levels, source.levels)
        )

    def ancestors(self, view: HierarchicalView) -> List[HierarchicalView]:
        """Views this view is computable from (including itself)."""
        return [v for v in self.views() if self.computable(view, v)]

    # ---------------------------------------------------------- labels

    def label(self, view: HierarchicalView) -> str:
        """Readable label: the level names, ``none`` for the all-ALL view."""
        parts = [
            self.hierarchies[i].level(l).name
            for i, l in enumerate(view.levels)
            if l != ALL
        ]
        return ",".join(parts) if parts else "none"

    def attrs(self, view: HierarchicalView) -> Tuple[str, ...]:
        """The view's level-attribute names, in dimension order."""
        return tuple(
            self.hierarchies[i].level(l).name
            for i, l in enumerate(view.levels)
            if l != ALL
        )

    # ----------------------------------------------------------- sizes

    def cells(self, view: HierarchicalView) -> float:
        """Dense cell count: product of the chosen levels' cardinalities."""
        return math.prod(
            self.hierarchies[i].level(l).cardinality
            for i, l in enumerate(view.levels)
            if l != ALL
        )

    def size(self, view: HierarchicalView) -> float:
        """Analytical row count (expected distinct cells hit by the raw
        rows), clamped to at least 1."""
        return max(1.0, expected_distinct(self.cells(view), self.raw_rows))

    def attr_cardinality(self, level_name: str) -> int:
        for h in self.hierarchies:
            for lvl in h.levels:
                if lvl.name == level_name:
                    return lvl.cardinality
        raise KeyError(f"unknown level attribute {level_name!r}")

    def prefix_rows(self, attrs: Sequence[str]) -> float:
        """Rows of the (virtual) view grouping by the given level attrs —
        the ``|E|`` of the cost formula for hierarchical indexes."""
        if not attrs:
            return 1.0
        cells = math.prod(self.attr_cardinality(a) for a in attrs)
        return max(1.0, expected_distinct(cells, self.raw_rows))

    def __repr__(self) -> str:
        dims = ", ".join(repr(h) for h in self.hierarchies)
        return f"HierarchicalCube([{dims}], raw_rows={self.raw_rows:g})"


def hierarchical_queries(
    cube: HierarchicalCube, view: HierarchicalView
) -> Iterator[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """The ``2^r`` slice queries associated with a view: every subset of
    its level attributes may be the selection part.  Yields
    ``(groupby_attrs, selection_attrs)`` tuples."""
    attrs = cube.attrs(view)
    for k in range(len(attrs) + 1):
        for sel in combinations(attrs, k):
            groupby = tuple(a for a in attrs if a not in sel)
            yield groupby, sel


def hierarchical_lattice_graph(
    cube: HierarchicalCube,
    max_fat_indexes_per_view: Optional[int] = None,
) -> QueryViewGraph:
    """Compile a hierarchical cube into a standard query-view graph.

    * one view structure per lattice point, sized analytically;
    * the ``2^r`` slice queries of every view, associated with it;
    * fat indexes (permutations of each view's level attributes), capped
      at ``max_fat_indexes_per_view`` if given (hierarchies multiply the
      lattice quickly; the cap keeps dense hierarchies tractable and is
      reported honestly via the graph's structure count);
    * linear-cost-model edges: a query is answerable by every view from
      which its own view is computable **at the same or finer levels on
      the mentioned dimensions**, at cost ``|V| / |prefix|``.

    The default cost of every query is the raw-data size (the top view's
    rows), matching the flat construction.
    """
    graph = QueryViewGraph()
    views = list(cube.views())
    top_rows = cube.size(cube.top())

    # queries: every (view, groupby, selection) triple, named canonically
    query_names: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], str] = {}
    query_home: Dict[str, HierarchicalView] = {}
    for view in views:
        for groupby, selection in hierarchical_queries(cube, view):
            key = (groupby, selection)
            if key in query_names:
                continue
            name = f"γ({','.join(groupby)})σ({','.join(selection)})"
            query_names[key] = name
            query_home[name] = view
            graph.add_query(name, default_cost=top_rows, payload=key)

    # Answerability rule: a view answers a query iff it carries every
    # mentioned attribute at exactly that level (selecting or grouping on
    # `month` needs a view materialized at the month level — a day-level
    # view cannot seek month values without the hierarchy encoding), and
    # the query's home view is computable from it.  This is the
    # conservative choice [HRU96] makes when associating queries with
    # lattice points.
    for view in views:
        view_label = cube.label(view)
        view_rows = cube.size(view)
        graph.add_view(view_label, space=view_rows, payload=view)

        attrs = cube.attrs(view)
        answerable = []
        for (groupby, selection), q_name in query_names.items():
            mentioned = tuple(groupby) + tuple(selection)
            if not cube.computable(query_home[q_name], view):
                continue
            if not all(a in attrs for a in mentioned):
                continue
            answerable.append((q_name, selection))
            graph.add_edge(q_name, view_label, cost=view_rows)

        if not attrs:
            continue
        index_perms = permutations(attrs)
        count = 0
        for perm in index_perms:
            if (
                max_fat_indexes_per_view is not None
                and count >= max_fat_indexes_per_view
            ):
                break
            count += 1
            joined = ",".join(perm)
            idx_name = f"I[{joined}]({view_label})"
            graph.add_index(view_label, idx_name, payload=perm)
            for q_name, selection in answerable:
                prefix: List[str] = []
                for attr in perm:
                    if attr in selection:
                        prefix.append(attr)
                    else:
                        break
                if not prefix:
                    continue
                cost = max(1.0, view_rows / cube.prefix_rows(prefix))
                if cost < view_rows:
                    graph.add_edge(q_name, idx_name, cost)
    return graph
