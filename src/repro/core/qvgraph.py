"""The query-view bipartite multigraph of Section 5.1.

This is the abstraction the selection algorithms actually run on.  It is
deliberately independent of data cubes: nodes are *queries* (with a default
cost ``T_i`` and an optional frequency) and *views* (with a space cost and a
set of *indexes*, each with its own space cost).  An edge ``(q, v)`` labeled
``(k, t)`` says query ``q`` can be answered using view ``v`` with its
``k``-th index at cost ``t``; ``k = 0`` (here: ``index=None``) means using
the plain view.

Graphs come from two places:

* hand construction (e.g. the paper's Figure 2 instance, arbitrary unit
  tests) via :meth:`QueryViewGraph.add_query` / ``add_view`` / ``add_index``
  / ``add_edge``; or
* a data cube, via :meth:`QueryViewGraph.from_cube`, which enumerates slice
  queries, fat indexes, and linear-cost-model edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.costmodel import LinearCostModel
from repro.core.index import enumerate_all_indexes, enumerate_fat_indexes
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery, enumerate_slice_queries

VIEW_KIND = "view"
INDEX_KIND = "index"


@dataclass(frozen=True)
class QuerySpec:
    """A query node: name, default (raw-data) cost, and frequency weight."""

    name: str
    default_cost: float
    frequency: float = 1.0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.default_cost < 0:
            raise ValueError(f"query {self.name!r}: default cost must be >= 0")
        if self.frequency < 0:
            raise ValueError(f"query {self.name!r}: frequency must be >= 0")


@dataclass(frozen=True)
class Structure:
    """A view or an index — the unit of materialization ("structure").

    For an index, ``view_name`` is the owning view's structure name; for a
    view it is its own name.
    """

    name: str
    kind: str
    space: float
    view_name: str
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in (VIEW_KIND, INDEX_KIND):
            raise ValueError(f"bad structure kind {self.kind!r}")
        if self.space <= 0:
            raise ValueError(f"structure {self.name!r}: space must be > 0")

    @property
    def is_view(self) -> bool:
        return self.kind == VIEW_KIND

    @property
    def is_index(self) -> bool:
        return self.kind == INDEX_KIND


class QueryViewGraph:
    """A mutable query-view graph; compile with
    :class:`repro.core.benefit.BenefitEngine` to run algorithms on it."""

    def __init__(self) -> None:
        self._queries: Dict[str, QuerySpec] = {}
        self._structures: Dict[str, Structure] = {}
        self._view_indexes: Dict[str, list] = {}
        # (query_name, structure_name) -> min cost over parallel edges
        self._edges: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------ building

    def add_query(
        self,
        name: str,
        default_cost: float,
        frequency: float = 1.0,
        payload: Any = None,
    ) -> QuerySpec:
        """Add a query node.  Names must be unique among queries."""
        if name in self._queries:
            raise ValueError(f"duplicate query name {name!r}")
        spec = QuerySpec(name, default_cost, frequency, payload)
        self._queries[name] = spec
        return spec

    def add_view(self, name: str, space: float, payload: Any = None) -> Structure:
        """Add a view structure.  Names must be unique among structures."""
        if name in self._structures:
            raise ValueError(f"duplicate structure name {name!r}")
        spec = Structure(name, VIEW_KIND, space, name, payload)
        self._structures[name] = spec
        self._view_indexes[name] = []
        return spec

    def add_index(
        self,
        view_name: str,
        name: str,
        space: Optional[float] = None,
        payload: Any = None,
    ) -> Structure:
        """Add an index on an existing view.

        ``space`` defaults to the owning view's space, per the paper's
        index-size model (Section 4.2.2).
        """
        if name in self._structures:
            raise ValueError(f"duplicate structure name {name!r}")
        view = self._structures.get(view_name)
        if view is None or not view.is_view:
            raise ValueError(f"unknown view {view_name!r} for index {name!r}")
        spec = Structure(
            name, INDEX_KIND, view.space if space is None else space, view_name, payload
        )
        self._structures[name] = spec
        self._view_indexes[view_name].append(name)
        return spec

    def add_edge(
        self,
        query_name: str,
        structure_name: str,
        cost: float,
    ) -> None:
        """Record that the query can be answered via the structure at
        ``cost`` rows.  For an index structure, the edge implicitly
        requires the owning view to be materialized too.

        Parallel edges keep only the minimum cost.
        """
        if query_name not in self._queries:
            raise ValueError(f"unknown query {query_name!r}")
        if structure_name not in self._structures:
            raise ValueError(f"unknown structure {structure_name!r}")
        if cost < 0:
            raise ValueError("edge cost must be >= 0")
        key = (query_name, structure_name)
        prev = self._edges.get(key)
        if prev is None or cost < prev:
            self._edges[key] = cost

    # ------------------------------------------------------------ reading

    @property
    def queries(self) -> list:
        return list(self._queries.values())

    @property
    def structures(self) -> list:
        return list(self._structures.values())

    @property
    def views(self) -> list:
        return [s for s in self._structures.values() if s.is_view]

    @property
    def indexes(self) -> list:
        return [s for s in self._structures.values() if s.is_index]

    def query(self, name: str) -> QuerySpec:
        return self._queries[name]

    def structure(self, name: str) -> Structure:
        return self._structures[name]

    def indexes_of(self, view_name: str) -> list:
        """Names of the indexes registered on a view."""
        return list(self._view_indexes[view_name])

    def edges(self) -> Iterable:
        """Yield ``(query_name, structure_name, cost)`` triples."""
        for (q, s), cost in self._edges.items():
            yield q, s, cost

    def edge_cost(self, query_name: str, structure_name: str) -> Optional[float]:
        """Cost of the edge, or ``None`` if absent."""
        return self._edges.get((query_name, structure_name))

    @property
    def n_queries(self) -> int:
        return len(self._queries)

    @property
    def n_structures(self) -> int:
        return len(self._structures)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def total_space(self) -> float:
        """Space needed to materialize every structure."""
        return sum(s.space for s in self._structures.values())

    def total_default_cost(self) -> float:
        """Frequency-weighted cost of answering everything from raw data."""
        return sum(q.frequency * q.default_cost for q in self._queries.values())

    def validate(self) -> None:
        """Check invariants: index edges never cost more than the owning
        view's scan edge would allow to be useful, every index has an owner,
        edge endpoints exist.  Raises ``ValueError`` on violation."""
        for (q, s), cost in self._edges.items():
            if q not in self._queries:
                raise ValueError(f"edge references unknown query {q!r}")
            if s not in self._structures:
                raise ValueError(f"edge references unknown structure {s!r}")
            if cost < 0:
                raise ValueError(f"edge ({q}, {s}) has negative cost")
        for name, struct in self._structures.items():
            if struct.is_index and struct.view_name not in self._structures:
                raise ValueError(f"index {name!r} has unknown view {struct.view_name!r}")

    def __repr__(self) -> str:
        return (
            f"QueryViewGraph(queries={self.n_queries}, views={len(self.views)}, "
            f"indexes={len(self.indexes)}, edges={self.n_edges})"
        )

    # ------------------------------------------------------------ from cube

    @classmethod
    def from_cube(
        cls,
        lattice: CubeLattice,
        queries: Optional[Sequence[SliceQuery]] = None,
        frequencies: Optional[Mapping[SliceQuery, float]] = None,
        cost_model: Optional[LinearCostModel] = None,
        index_universe: str = "fat",
        skip_useless_index_edges: bool = True,
    ) -> "QueryViewGraph":
        """Build the query-view graph of a data cube.

        Parameters
        ----------
        lattice:
            The cube's view lattice with sizes.
        queries:
            The query population; defaults to all ``3^n`` slice queries.
        frequencies:
            Optional per-query weights (default: equiprobable, weight 1).
        cost_model:
            Defaults to :class:`LinearCostModel` over ``lattice`` with the
            top view as the raw data.
        index_universe:
            ``"fat"`` (default) enumerates only fat indexes per the
            pruning argument of Section 4.2.2; ``"all"`` enumerates every
            ordering of every non-empty attribute subset (for the pruning
            ablation); ``"none"`` adds no indexes (the [HRU96] setting).
        skip_useless_index_edges:
            When True (default), index edges that do not beat the plain
            view scan are omitted — they can never influence a selection.
        """
        if cost_model is None:
            cost_model = LinearCostModel(lattice)
        if queries is None:
            queries = list(enumerate_slice_queries(lattice.schema.names))
        frequencies = dict(frequencies or {})

        if index_universe == "fat":
            index_enum = enumerate_fat_indexes
        elif index_universe == "all":
            index_enum = enumerate_all_indexes
        elif index_universe == "none":
            def index_enum(view):  # noqa: D401 - tiny local stub
                return iter(())
        else:
            raise ValueError(
                f"index_universe must be 'fat', 'all' or 'none', got {index_universe!r}"
            )

        graph = cls()
        for query in queries:
            graph.add_query(
                str(query),
                default_cost=cost_model.default_cost(query),
                frequency=frequencies.get(query, 1.0),
                payload=query,
            )

        for view in lattice.views():
            view_name = lattice.label(view)
            graph.add_view(view_name, space=lattice.size(view), payload=view)
            answerable = [q for q in queries if q.answerable_by(view)]
            for query in answerable:
                graph.add_edge(str(query), view_name, cost_model.cost(query, view))
            for index in index_enum(view):
                index_name = lattice.index_label(index)
                graph.add_index(view_name, index_name, payload=index)
                view_rows = lattice.size(view)
                for query in answerable:
                    cost = cost_model.cost(query, view, index)
                    if skip_useless_index_edges and cost >= view_rows:
                        continue
                    graph.add_edge(str(query), index_name, cost)
        return graph
