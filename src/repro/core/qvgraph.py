"""The query-view bipartite multigraph of Section 5.1.

This is the abstraction the selection algorithms actually run on.  It is
deliberately independent of data cubes: nodes are *queries* (with a default
cost ``T_i`` and an optional frequency) and *views* (with a space cost and a
set of *indexes*, each with its own space cost).  An edge ``(q, v)`` labeled
``(k, t)`` says query ``q`` can be answered using view ``v`` with its
``k``-th index at cost ``t``; ``k = 0`` (here: ``index=None``) means using
the plain view.

Graphs come from two places:

* hand construction (e.g. the paper's Figure 2 instance, arbitrary unit
  tests) via :meth:`QueryViewGraph.add_query` / ``add_view`` / ``add_index``
  / ``add_edge``; or
* a data cube, via :meth:`QueryViewGraph.from_cube`, which enumerates slice
  queries, fat indexes, and linear-cost-model edges.

Edges are stored two ways: a ``(query, structure) -> cost`` dict fed by
:meth:`add_edge`, and *bulk blocks* of position-indexed numpy arrays fed by
:meth:`add_edges_bulk`.  The block path exists for scale — ``from_cube`` on
a d=7 fat-index cube emits ~5 million edges, and one dict insert per edge
dominates the build.  The vectorized ``from_cube`` computes answerability
with subset bitmasks over the lattice and appends whole edge arrays;
:meth:`edge_arrays` hands the combined edge set to the benefit engine
without ever materializing per-edge Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.costmodel import LinearCostModel
from repro.core.index import Index, enumerate_all_indexes, enumerate_fat_indexes
from repro.core.lattice import CubeLattice
from repro.core.query import SliceQuery, enumerate_slice_queries
from repro.core.view import View

VIEW_KIND = "view"
INDEX_KIND = "index"

#: Pair-cell budget per chunk of the vectorized index-edge computation —
#: bounds temporaries to a few tens of MB regardless of cube size.
_VEC_CHUNK_CELLS = 2_000_000


@dataclass(frozen=True)
class QuerySpec:
    """A query node: name, default (raw-data) cost, and frequency weight."""

    name: str
    default_cost: float
    frequency: float = 1.0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.default_cost < 0:
            raise ValueError(f"query {self.name!r}: default cost must be >= 0")
        if self.frequency < 0:
            raise ValueError(f"query {self.name!r}: frequency must be >= 0")


@dataclass(frozen=True)
class Structure:
    """A view or an index — the unit of materialization ("structure").

    For an index, ``view_name`` is the owning view's structure name; for a
    view it is its own name.
    """

    name: str
    kind: str
    space: float
    view_name: str
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in (VIEW_KIND, INDEX_KIND):
            raise ValueError(f"bad structure kind {self.kind!r}")
        if self.space <= 0:
            raise ValueError(f"structure {self.name!r}: space must be > 0")

    @property
    def is_view(self) -> bool:
        return self.kind == VIEW_KIND

    @property
    def is_index(self) -> bool:
        return self.kind == INDEX_KIND


class QueryViewGraph:
    """A mutable query-view graph; compile with
    :class:`repro.core.benefit.BenefitEngine` to run algorithms on it."""

    def __init__(self) -> None:
        self._queries: Dict[str, QuerySpec] = {}
        self._structures: Dict[str, Structure] = {}
        self._view_indexes: Dict[str, list] = {}
        # (query_name, structure_name) -> min cost over parallel edges
        self._edges: Dict[Tuple[str, str], float] = {}
        # bulk edges: (query_positions, structure_positions, costs) arrays,
        # positions being insertion order of the node dicts
        self._edge_blocks: list = []
        self._n_block_edges = 0
        self._block_lookup: Optional[Dict[Tuple[int, int], float]] = None

    # ------------------------------------------------------------ building

    def add_query(
        self,
        name: str,
        default_cost: float,
        frequency: float = 1.0,
        payload: Any = None,
    ) -> QuerySpec:
        """Add a query node.  Names must be unique among queries."""
        if name in self._queries:
            raise ValueError(f"duplicate query name {name!r}")
        spec = QuerySpec(name, default_cost, frequency, payload)
        self._queries[name] = spec
        return spec

    def add_view(self, name: str, space: float, payload: Any = None) -> Structure:
        """Add a view structure.  Names must be unique among structures."""
        if name in self._structures:
            raise ValueError(f"duplicate structure name {name!r}")
        spec = Structure(name, VIEW_KIND, space, name, payload)
        self._structures[name] = spec
        self._view_indexes[name] = []
        return spec

    def add_index(
        self,
        view_name: str,
        name: str,
        space: Optional[float] = None,
        payload: Any = None,
    ) -> Structure:
        """Add an index on an existing view.

        ``space`` defaults to the owning view's space, per the paper's
        index-size model (Section 4.2.2).
        """
        if name in self._structures:
            raise ValueError(f"duplicate structure name {name!r}")
        view = self._structures.get(view_name)
        if view is None or not view.is_view:
            raise ValueError(f"unknown view {view_name!r} for index {name!r}")
        spec = Structure(
            name, INDEX_KIND, view.space if space is None else space, view_name, payload
        )
        self._structures[name] = spec
        self._view_indexes[view_name].append(name)
        return spec

    def add_edge(
        self,
        query_name: str,
        structure_name: str,
        cost: float,
    ) -> None:
        """Record that the query can be answered via the structure at
        ``cost`` rows.  For an index structure, the edge implicitly
        requires the owning view to be materialized too.

        Parallel edges keep only the minimum cost.
        """
        if query_name not in self._queries:
            raise ValueError(f"unknown query {query_name!r}")
        if structure_name not in self._structures:
            raise ValueError(f"unknown structure {structure_name!r}")
        if cost < 0:
            raise ValueError("edge cost must be >= 0")
        key = (query_name, structure_name)
        prev = self._edges.get(key)
        if prev is None or cost < prev:
            self._edges[key] = cost

    def add_edges_bulk(
        self,
        query_positions: np.ndarray,
        structure_positions: np.ndarray,
        costs: np.ndarray,
    ) -> None:
        """Append a block of edges given by *node positions* (insertion
        order of queries / structures) instead of names.

        This is the scale path: a block is stored as three aligned numpy
        arrays, so millions of edges cost three array appends.  Parallel
        edges across blocks (or against :meth:`add_edge`) are resolved to
        the minimum cost at read time (``edge_cost``) and at engine
        compile time.
        """
        q = np.ascontiguousarray(query_positions, dtype=np.int64)
        s = np.ascontiguousarray(structure_positions, dtype=np.int64)
        c = np.ascontiguousarray(costs, dtype=np.float64)
        if not (q.ndim == s.ndim == c.ndim == 1 and q.size == s.size == c.size):
            raise ValueError("bulk edge arrays must be 1-D and aligned")
        if q.size == 0:
            return
        if int(q.min()) < 0 or int(q.max()) >= len(self._queries):
            raise ValueError("bulk edge query position out of range")
        if int(s.min()) < 0 or int(s.max()) >= len(self._structures):
            raise ValueError("bulk edge structure position out of range")
        if float(c.min()) < 0:
            raise ValueError("edge cost must be >= 0")
        self._edge_blocks.append((q, s, c))
        self._n_block_edges += int(q.size)
        self._block_lookup = None

    # ------------------------------------------------------------ reading

    @property
    def queries(self) -> list:
        return list(self._queries.values())

    @property
    def structures(self) -> list:
        return list(self._structures.values())

    @property
    def views(self) -> list:
        return [s for s in self._structures.values() if s.is_view]

    @property
    def indexes(self) -> list:
        return [s for s in self._structures.values() if s.is_index]

    def query(self, name: str) -> QuerySpec:
        return self._queries[name]

    def structure(self, name: str) -> Structure:
        return self._structures[name]

    def indexes_of(self, view_name: str) -> list:
        """Names of the indexes registered on a view."""
        return list(self._view_indexes[view_name])

    def edges(self) -> Iterable:
        """Yield ``(query_name, structure_name, cost)`` triples."""
        for (q, s), cost in self._edges.items():
            yield q, s, cost
        if self._edge_blocks:
            query_names = list(self._queries)
            structure_names = list(self._structures)
            for q, s, c in self._edge_blocks:
                for qi, si, ci in zip(q.tolist(), s.tolist(), c.tolist()):
                    yield query_names[qi], structure_names[si], ci

    def _block_lookup_map(self) -> Dict[Tuple[int, int], float]:
        """Lazy ``(query_pos, structure_pos) -> min cost`` map over the
        bulk blocks — only for name-based point lookups; the engine reads
        blocks via :meth:`edge_arrays` and never builds this."""
        if self._block_lookup is None:
            lookup: Dict[Tuple[int, int], float] = {}
            for q, s, c in self._edge_blocks:
                for qi, si, ci in zip(q.tolist(), s.tolist(), c.tolist()):
                    key = (qi, si)
                    prev = lookup.get(key)
                    if prev is None or ci < prev:
                        lookup[key] = ci
            self._block_lookup = lookup
        return self._block_lookup

    def edge_cost(self, query_name: str, structure_name: str) -> Optional[float]:
        """Cost of the edge, or ``None`` if absent (min over parallel
        edges, across both the dict and bulk stores)."""
        best = self._edges.get((query_name, structure_name))
        if self._edge_blocks:
            qpos = list(self._queries).index(query_name) if query_name in self._queries else -1
            spos = (
                list(self._structures).index(structure_name)
                if structure_name in self._structures
                else -1
            )
            if qpos >= 0 and spos >= 0:
                block = self._block_lookup_map().get((qpos, spos))
                if block is not None and (best is None or block < best):
                    best = block
        return best

    def edge_arrays(self) -> tuple:
        """All edges as ``(query_positions, structure_positions, costs)``
        int64/int64/float64 arrays (dict edges first, then bulk blocks;
        parallel edges are *not* merged here — the benefit engine keeps
        the minimum)."""
        query_pos = {name: i for i, name in enumerate(self._queries)}
        structure_pos = {name: i for i, name in enumerate(self._structures)}
        q_parts = [
            np.fromiter(
                (query_pos[q] for (q, _s) in self._edges), dtype=np.int64, count=len(self._edges)
            )
        ]
        s_parts = [
            np.fromiter(
                (structure_pos[s] for (_q, s) in self._edges),
                dtype=np.int64,
                count=len(self._edges),
            )
        ]
        c_parts = [np.fromiter(self._edges.values(), dtype=np.float64, count=len(self._edges))]
        for q, s, c in self._edge_blocks:
            q_parts.append(q)
            s_parts.append(s)
            c_parts.append(c)
        return (
            np.concatenate(q_parts),
            np.concatenate(s_parts),
            np.concatenate(c_parts),
        )

    @property
    def n_queries(self) -> int:
        return len(self._queries)

    @property
    def n_structures(self) -> int:
        return len(self._structures)

    @property
    def n_edges(self) -> int:
        return len(self._edges) + self._n_block_edges

    def total_space(self) -> float:
        """Space needed to materialize every structure."""
        return sum(s.space for s in self._structures.values())

    def total_default_cost(self) -> float:
        """Frequency-weighted cost of answering everything from raw data."""
        return sum(q.frequency * q.default_cost for q in self._queries.values())

    def validate(self) -> None:
        """Check invariants: index edges never cost more than the owning
        view's scan edge would allow to be useful, every index has an owner,
        edge endpoints exist.  Raises ``ValueError`` on violation."""
        for (q, s), cost in self._edges.items():
            if q not in self._queries:
                raise ValueError(f"edge references unknown query {q!r}")
            if s not in self._structures:
                raise ValueError(f"edge references unknown structure {s!r}")
            if cost < 0:
                raise ValueError(f"edge ({q}, {s}) has negative cost")
        for q, s, c in self._edge_blocks:
            if q.size and (int(q.min()) < 0 or int(q.max()) >= len(self._queries)):
                raise ValueError("bulk edge references unknown query position")
            if s.size and (int(s.min()) < 0 or int(s.max()) >= len(self._structures)):
                raise ValueError("bulk edge references unknown structure position")
            if c.size and float(c.min()) < 0:
                raise ValueError("bulk edge has negative cost")
        for name, struct in self._structures.items():
            if struct.is_index and struct.view_name not in self._structures:
                raise ValueError(f"index {name!r} has unknown view {struct.view_name!r}")

    def __repr__(self) -> str:
        return (
            f"QueryViewGraph(queries={self.n_queries}, views={len(self.views)}, "
            f"indexes={len(self.indexes)}, edges={self.n_edges})"
        )

    # ------------------------------------------------------------ from cube

    @classmethod
    def from_cube(
        cls,
        lattice: CubeLattice,
        queries: Optional[Sequence[SliceQuery]] = None,
        frequencies: Optional[Mapping[SliceQuery, float]] = None,
        cost_model: Optional[LinearCostModel] = None,
        index_universe: str = "fat",
        skip_useless_index_edges: bool = True,
        vectorized: Optional[bool] = None,
    ) -> "QueryViewGraph":
        """Build the query-view graph of a data cube.

        Parameters
        ----------
        lattice:
            The cube's view lattice with sizes.
        queries:
            The query population; defaults to all ``3^n`` slice queries.
        frequencies:
            Optional per-query weights (default: equiprobable, weight 1).
        cost_model:
            Defaults to :class:`LinearCostModel` over ``lattice`` with the
            top view as the raw data.
        index_universe:
            ``"fat"`` (default) enumerates only fat indexes per the
            pruning argument of Section 4.2.2; ``"all"`` enumerates every
            ordering of every non-empty attribute subset (for the pruning
            ablation); ``"none"`` adds no indexes (the [HRU96] setting).
        skip_useless_index_edges:
            When True (default), index edges that do not beat the plain
            view scan are omitted — they can never influence a selection.
        vectorized:
            ``None`` (default) uses the bitmask fast path whenever the
            inputs allow it (plain :class:`LinearCostModel` over this
            lattice, plain :class:`SliceQuery` queries) and falls back to
            the reference per-edge loop otherwise.  ``True`` demands the
            fast path (raises ``ValueError`` if ineligible); ``False``
            forces the reference loop.  Both paths produce node-for-node,
            edge-for-edge identical graphs.
        """
        if cost_model is None:
            cost_model = LinearCostModel(lattice)
        if queries is None:
            queries = list(enumerate_slice_queries(lattice.schema.names))
        else:
            queries = list(queries)
        frequencies = dict(frequencies or {})

        if index_universe == "fat":
            index_enum = enumerate_fat_indexes
        elif index_universe == "all":
            index_enum = enumerate_all_indexes
        elif index_universe == "none":
            def index_enum(view):  # noqa: D401 - tiny local stub
                return iter(())
        else:
            raise ValueError(
                f"index_universe must be 'fat', 'all' or 'none', got {index_universe!r}"
            )

        fast_ok = (
            vectorized is not False
            and type(cost_model) is LinearCostModel
            and cost_model.lattice is lattice
            and isinstance(lattice, CubeLattice)
            and lattice.schema.n_dims <= 20
            and cost_model.default_view.attrs <= set(lattice.schema.names)
            and all(type(q) is SliceQuery for q in queries)
        )
        if vectorized and not fast_ok:
            raise ValueError(
                "vectorized=True requires a plain LinearCostModel over this "
                "lattice and plain SliceQuery inputs"
            )
        if fast_ok:
            return cls._from_cube_vectorized(
                lattice, queries, frequencies, cost_model, index_enum,
                skip_useless_index_edges,
            )

        graph = cls()
        for query in queries:
            graph.add_query(
                str(query),
                default_cost=cost_model.default_cost(query),
                frequency=frequencies.get(query, 1.0),
                payload=query,
            )

        for view in lattice.views():
            view_name = lattice.label(view)
            graph.add_view(view_name, space=lattice.size(view), payload=view)
            answerable = [q for q in queries if q.answerable_by(view)]
            for query in answerable:
                graph.add_edge(str(query), view_name, cost_model.cost(query, view))
            for index in index_enum(view):
                index_name = lattice.index_label(index)
                graph.add_index(view_name, index_name, payload=index)
                view_rows = lattice.size(view)
                for query in answerable:
                    cost = cost_model.cost(query, view, index)
                    if skip_useless_index_edges and cost >= view_rows:
                        continue
                    graph.add_edge(str(query), index_name, cost)
        return graph

    @classmethod
    def from_mined(
        cls,
        lattice: CubeLattice,
        mined,
        cost_model: Optional[LinearCostModel] = None,
        skip_useless_index_edges: bool = True,
    ) -> "QueryViewGraph":
        """Build the graph of a *mined* candidate space (see
        :mod:`repro.mining`).

        Unlike :meth:`from_cube`, this never enumerates the lattice's
        ``3^n`` query universe or the ``~2·n!`` fat-index universe —
        query nodes, view nodes, and index nodes all come from the mined
        attribute sets alone, so a d=9–10 cube whose full graph cannot
        even be built compiles in seconds.

        ``mined`` is duck-typed (a
        :class:`repro.mining.candidates.MinedCandidates`, kept out of
        the core package's imports): it must expose ``queries`` (a
        ``{SliceQuery: weight}`` mapping), ``view_attrs`` (kept views as
        attribute frozensets) and ``index_keys`` (``{view_attrs: [key
        tuple, ...]}``).  Node order follows the mined view order —
        lattice order — so greedy argmax tie-breaks match a
        :meth:`from_cube` graph restricted to the same structures.
        """
        if cost_model is None:
            cost_model = LinearCostModel(lattice)
        graph = cls()

        def query_key(query):
            return (
                len(query.attrs),
                tuple(sorted(query.attrs)),
                len(query.selection),
                tuple(sorted(query.selection)),
            )

        queries = sorted(mined.queries, key=query_key)
        by_attrs: Dict[frozenset, list] = {}
        for query in queries:
            graph.add_query(
                str(query),
                default_cost=cost_model.default_cost(query),
                frequency=float(mined.queries[query]),
                payload=query,
            )
            by_attrs.setdefault(query.attrs, []).append(query)

        for attrs in mined.view_attrs:
            view = View(attrs)
            if view not in lattice:
                raise ValueError(f"mined view {view} is not a view of this lattice")
            view_name = lattice.label(view)
            view_rows = lattice.size(view)
            graph.add_view(view_name, space=view_rows, payload=view)
            answerable = []
            for q_attrs, members in by_attrs.items():
                if q_attrs <= attrs:
                    answerable.extend(members)
            answerable.sort(key=query_key)
            for query in answerable:
                graph.add_edge(str(query), view_name, cost_model.cost(query, view))
            for key in mined.index_keys.get(attrs, ()):
                index = Index(view, key)
                index_name = lattice.index_label(index)
                graph.add_index(view_name, index_name, payload=index)
                for query in answerable:
                    cost = cost_model.cost(query, view, index)
                    if skip_useless_index_edges and cost >= view_rows:
                        continue
                    graph.add_edge(str(query), index_name, cost)
        return graph

    @classmethod
    def _from_cube_vectorized(
        cls,
        lattice: CubeLattice,
        queries: Sequence[SliceQuery],
        frequencies: Mapping[SliceQuery, float],
        cost_model: LinearCostModel,
        index_enum,
        skip_useless_index_edges: bool,
    ) -> "QueryViewGraph":
        """Bitmask fast path of :meth:`from_cube`.

        Every view and every query attribute set becomes an ``n``-bit
        mask; a view answers a query iff ``q_attrs & ~view_mask == 0``.
        Index usability is the longest key prefix inside the query's
        selection mask, found by counting cumulative-prefix-mask subset
        tests (monotone in the prefix length), and the cost formula
        ``max(1, |V| / |prefix|)`` is evaluated on whole (index × query)
        blocks.  Emits node-for-node, edge-for-edge the same graph as the
        reference loop.
        """
        graph = cls()
        names = tuple(lattice.schema.names)
        n = len(names)
        bit = {attr: 1 << i for i, attr in enumerate(names)}
        sentinel = np.int64(1 << n)  # impossible prefix: a bit no query has

        def mask_of(attrs) -> int:
            m = 0
            for attr in attrs:
                m |= bit[attr]
            return m

        default_view = cost_model.default_view
        default_mask = mask_of(default_view.attrs)
        default_cost_val = lattice.size(default_view)

        n_q = len(queries)
        q_attr_masks = np.empty(n_q, dtype=np.int64)
        q_sel_masks = np.empty(n_q, dtype=np.int64)
        for qi, query in enumerate(queries):
            try:
                attr_mask = mask_of(query.attrs)
            except KeyError:
                # attribute outside the schema: unanswerable by the
                # default view — raise the canonical error
                cost_model.default_cost(query)
                raise AssertionError("unreachable")  # pragma: no cover
            if attr_mask & ~default_mask:
                cost_model.default_cost(query)  # raises ValueError
            graph.add_query(
                str(query),
                default_cost=default_cost_val,
                frequency=frequencies.get(query, 1.0),
                payload=query,
            )
            q_attr_masks[qi] = attr_mask
            q_sel_masks[qi] = mask_of(query.selection)

        size_by_mask = np.ones(1 << n, dtype=np.float64)
        for view in lattice.views():
            size_by_mask[mask_of(view.attrs)] = float(lattice.size(view))

        for view in lattice.views():
            view_name = lattice.label(view)
            view_rows = lattice.size(view)
            graph.add_view(view_name, space=view_rows, payload=view)
            view_pos = graph.n_structures - 1
            view_mask = mask_of(view.attrs)
            ans = np.flatnonzero((q_attr_masks & ~np.int64(view_mask)) == 0)
            if ans.size:
                graph.add_edges_bulk(
                    ans,
                    np.full(ans.size, view_pos, dtype=np.int64),
                    np.full(ans.size, float(view_rows)),
                )

            index_list = list(index_enum(view))
            if not index_list or not ans.size:
                for index in index_list:
                    graph.add_index(view_name, lattice.index_label(index), payload=index)
                continue
            first_index_pos = graph.n_structures
            for index in index_list:
                graph.add_index(view_name, lattice.index_label(index), payload=index)

            not_sel = ~q_sel_masks[ans]  # high bits (incl. sentinel) set
            kmax = max(len(index.key) for index in index_list)
            chunk_rows = max(1, _VEC_CHUNK_CELLS // int(ans.size))
            view_rows_f = float(view_rows)
            for lo in range(0, len(index_list), chunk_rows):
                chunk = index_list[lo : lo + chunk_rows]
                n_i = len(chunk)
                # cumulative prefix masks; sentinel past the key's end
                prefix_masks = np.full((n_i, kmax + 1), sentinel, dtype=np.int64)
                prefix_masks[:, 0] = 0
                for i, index in enumerate(chunk):
                    mask = 0
                    for j, attr in enumerate(index.key, start=1):
                        mask |= bit[attr]
                        prefix_masks[i, j] = mask
                # usable prefix length: prefix_j usable iff its mask is a
                # subset of the selection mask; usability is monotone in j
                usable_len = np.zeros((n_i, ans.size), dtype=np.int64)
                for j in range(1, kmax + 1):
                    usable_len += (prefix_masks[:, j : j + 1] & not_sel[None, :]) == 0
                pair_prefix = np.take_along_axis(prefix_masks, usable_len, axis=1)
                costs = view_rows_f / size_by_mask[pair_prefix]
                np.maximum(costs, 1.0, out=costs)
                if skip_useless_index_edges:
                    keep = costs < view_rows_f
                else:
                    keep = np.ones(costs.shape, dtype=bool)
                ii, aa = np.nonzero(keep)
                if ii.size:
                    graph.add_edges_bulk(
                        ans[aa], first_index_pos + lo + ii, costs[keep]
                    )
        return graph
