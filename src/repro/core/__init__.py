"""Core model: views, lattice, queries, indexes, costs, benefit machinery."""

from repro.core.benefit import BenefitEngine
from repro.core.costmodel import LinearCostModel
from repro.core.hierarchy import (
    ALL,
    HierarchicalCube,
    HierarchicalView,
    Hierarchy,
    Level,
    hierarchical_lattice_graph,
)
from repro.core.index import (
    Index,
    count_all_indexes,
    count_fat_indexes,
    enumerate_all_indexes,
    enumerate_fat_indexes,
    prune_prefix_dominated,
)
from repro.core.lattice import CubeLattice
from repro.core.lattice_draw import draw_hasse, draw_lattice
from repro.core.query import (
    SliceQuery,
    count_slice_queries,
    enumerate_slice_queries,
    queries_for_view,
)
from repro.core.qvgraph import QuerySpec, QueryViewGraph, Structure
from repro.core.selection import SelectionResult, Stage
from repro.core.view import View, parse_view

__all__ = [
    "ALL",
    "BenefitEngine",
    "CubeLattice",
    "HierarchicalCube",
    "HierarchicalView",
    "Hierarchy",
    "Level",
    "hierarchical_lattice_graph",
    "Index",
    "LinearCostModel",
    "QuerySpec",
    "QueryViewGraph",
    "SelectionResult",
    "SliceQuery",
    "Stage",
    "Structure",
    "View",
    "count_all_indexes",
    "count_fat_indexes",
    "count_slice_queries",
    "draw_hasse",
    "draw_lattice",
    "enumerate_all_indexes",
    "enumerate_fat_indexes",
    "enumerate_slice_queries",
    "parse_view",
    "prune_prefix_dominated",
    "queries_for_view",
]
