"""Selection results: what an algorithm picked, stage by stage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Stage:
    """One stage of a greedy algorithm: the set it picked and its value."""

    structures: tuple
    benefit: float
    space: float
    tau_after: float

    @property
    def benefit_per_space(self) -> float:
        return self.benefit / self.space if self.space else 0.0

    def __str__(self) -> str:
        names = ", ".join(self.structures)
        return (
            f"{{{names}}}: benefit {self.benefit:g} over space {self.space:g} "
            f"({self.benefit_per_space:g}/unit)"
        )


@dataclass(frozen=True)
class SelectionResult:
    """The outcome of running a selection algorithm on a query-view graph.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name (e.g. ``"2-greedy"``).
    selected:
        Structure names in the order they were picked.
    stages:
        Per-stage record (empty for non-staged algorithms like optimal).
    space_budget:
        The space constraint ``S`` the algorithm was given.
    space_used:
        Total space of the selection (may exceed ``S`` for the paper-mode
        algorithms, bounded by their theorems).
    initial_tau:
        τ(G, ∅) — total cost with no materialization.
    tau:
        τ(G, M) — total cost with the selection materialized.
    total_frequency:
        Sum of query frequencies (for average-cost reporting).
    interrupted:
        ``True`` when the run stopped early (deadline, memory budget,
        signal, or injected fault).  Every committed stage is a valid
        selection, so the result is still usable — just not final.
    stop_reason:
        Machine-readable reason for the early stop (``None`` when the
        run completed).
    """

    algorithm: str
    selected: tuple
    stages: tuple
    space_budget: float
    space_used: float
    initial_tau: float
    tau: float
    total_frequency: float
    interrupted: bool = False
    stop_reason: Optional[str] = None

    @property
    def benefit(self) -> float:
        """Absolute benefit of the selection: τ(G, ∅) − τ(G, M)."""
        return self.initial_tau - self.tau

    @property
    def average_query_cost(self) -> float:
        """τ divided by total query frequency (rows per query)."""
        if self.total_frequency == 0:
            return 0.0
        return self.tau / self.total_frequency

    def __contains__(self, structure_name: str) -> bool:
        return structure_name in self.selected

    def summary(self) -> str:
        """One-line summary suitable for experiment tables."""
        note = (
            f" [interrupted: {self.stop_reason or 'stopped'}]"
            if self.interrupted
            else ""
        )
        return (
            f"{self.algorithm}: {len(self.selected)} structures, "
            f"space {self.space_used:g}/{self.space_budget:g}, "
            f"benefit {self.benefit:g}, avg query cost {self.average_query_cost:g}"
            + note
        )

    def table(self) -> str:
        """Multi-line human-readable report of the selection stages."""
        lines = [self.summary()]
        for i, stage in enumerate(self.stages, start=1):
            lines.append(f"  stage {i}: {stage}")
        if not self.stages:
            lines.append("  selected: " + (", ".join(self.selected) or "(nothing)"))
        return "\n".join(lines)


def make_result(
    algorithm: str,
    engine,
    stages: Sequence[Stage],
    space_budget: float,
    picked_order: Sequence[str],
    interrupted: bool = False,
    stop_reason: Optional[str] = None,
) -> SelectionResult:
    """Assemble a :class:`SelectionResult` from a finished engine state."""
    return SelectionResult(
        algorithm=algorithm,
        selected=tuple(picked_order),
        stages=tuple(stages),
        space_budget=space_budget,
        space_used=engine.space_used(),
        initial_tau=float(engine.frequencies @ engine.defaults),
        tau=engine.tau(),
        total_frequency=float(engine.frequencies.sum()),
        interrupted=interrupted,
        stop_reason=stop_reason,
    )
