"""ASCII rendering of view lattices — Figure 1 in a terminal.

``draw_lattice`` lays each dimensionality level on its own line, centred,
with sizes attached — the shape of the paper's Figure 1.  ``draw_hasse``
additionally prints the parent→child edges as an indented adjacency
listing (readable for any dimension where the picture itself would not
be).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.lattice import CubeLattice
from repro.core.view import View


def _format_rows(rows: float) -> str:
    if rows >= 1_000_000:
        return f"{rows / 1_000_000:g}M"
    if rows >= 1_000:
        return f"{rows / 1_000:g}k"
    return f"{rows:g}"


def draw_lattice(
    lattice: CubeLattice,
    annotate: Optional[Callable[[View], str]] = None,
    width: Optional[int] = None,
) -> str:
    """Render the lattice level by level, top view first.

    ``annotate`` overrides the per-view annotation (default: the row
    count).  ``width`` fixes the centring width (default: widest level).

    >>> from repro.datasets.tpcd import tpcd_lattice
    >>> print(draw_lattice(tpcd_lattice()).splitlines()[0].strip())
    psc=6M
    """
    if annotate is None:
        def annotate(view: View) -> str:
            return _format_rows(lattice.size(view))

    level_lines: List[str] = []
    for r in range(lattice.n_dims, -1, -1):
        cells = [
            f"{lattice.label(view)}={annotate(view)}"
            for view in lattice.level(r)
        ]
        level_lines.append("   ".join(cells))
    target = width if width is not None else max(len(line) for line in level_lines)
    return "\n".join(line.center(target).rstrip() for line in level_lines)


def draw_hasse(lattice: CubeLattice) -> str:
    """Adjacency listing of the Hasse diagram: each view and its children.

    >>> from repro.datasets.tpcd import tpcd_lattice
    >>> print(draw_hasse(tpcd_lattice()).splitlines()[0])
    psc (6M rows)
    """
    lines: List[str] = []
    for r in range(lattice.n_dims, -1, -1):
        for view in lattice.level(r):
            lines.append(
                f"{lattice.label(view)} ({_format_rows(lattice.size(view))} rows)"
            )
            for child in lattice.children(view):
                lines.append(f"  └─ {lattice.label(child)}")
    return "\n".join(lines)
