"""B-tree indexes on materialized views (Section 3.3 of the paper).

An index ``I_D(V)`` on view ``V`` has a search key ``D`` — an *ordered*
sequence of distinct attributes of ``V``.  The order matters: the index can
help answer a slice query exactly when some prefix of ``D`` consists of the
query's selection attributes.

Under the paper's size model (Section 4.2.2) every index on ``V`` occupies
the same space as ``V`` itself, so an index whose key is a proper prefix of
another index's key is *dominated* (never better, same cost in space) and
can be pruned.  The survivors are the **fat indexes**: the ``m!``
permutations of all ``m`` attributes of the view.
"""

from __future__ import annotations

import math
from itertools import permutations
from typing import Iterable, Iterator, Sequence

from repro.core.query import SliceQuery
from repro.core.view import View


class Index:
    """An index ``I_D(V)``: search key ``key`` over view ``view``.

    >>> ps = View.of("p", "s")
    >>> idx = Index(ps, ("s", "p"))
    >>> str(idx)
    'I_sp(ps)'
    >>> idx.is_fat
    True
    """

    __slots__ = ("_view", "_key", "_hash")

    def __init__(self, view: View, key: Sequence[str]):
        key = tuple(key)
        if not key:
            raise ValueError("index key must be non-empty")
        if len(set(key)) != len(key):
            raise ValueError(f"index key has duplicate attributes: {key}")
        extraneous = set(key) - view.attrs
        if extraneous:
            raise ValueError(
                f"index key attributes {sorted(extraneous)} are not in view {view}"
            )
        self._view = view
        self._key = key
        self._hash = hash((view, key))

    @property
    def view(self) -> View:
        """The view the index is built on."""
        return self._view

    @property
    def key(self) -> tuple:
        """The ordered search-key attributes ``D``."""
        return self._key

    @property
    def is_fat(self) -> bool:
        """True when the key uses *all* attributes of the view."""
        return len(self._key) == len(self._view)

    def usable_prefix(self, query: SliceQuery) -> tuple:
        """Longest prefix of the key made only of the query's selection attrs.

        This is the set ``E`` of the paper's cost formula (Section 4.1.1):
        the index lets us touch only the rows matching the fixed values of
        these attributes.  Returns the empty tuple when the index is
        useless for the query.
        """
        prefix = []
        for attr in self._key:
            if attr in query.selection:
                prefix.append(attr)
            else:
                break
        return tuple(prefix)

    def helps(self, query: SliceQuery) -> bool:
        """True iff the index reduces the rows processed for ``query``.

        Requires the query to be answerable by the underlying view and at
        least one key attribute to be a usable prefix.
        """
        return query.answerable_by(self._view) and bool(self.usable_prefix(query))

    def is_prefix_of(self, other: "Index") -> bool:
        """True iff this index's key is a (non-strict) prefix of ``other``'s
        key, on the same view."""
        if self._view != other._view or len(self._key) > len(other._key):
            return False
        return other._key[: len(self._key)] == self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Index):
            return NotImplemented
        return self._view == other._view and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        key = (
            "".join(self._key)
            if all(len(a) == 1 for a in self._key)
            else ",".join(self._key)
        )
        return f"I_{key}({self._view})"

    def __repr__(self) -> str:
        return f"Index({str(self)})"


def parse_index_label(text: str) -> Index:
    """Parse an index written in the paper's label form, e.g. ``I_sp(ps)``.

    The inverse of ``str(Index)`` /
    :meth:`~repro.core.lattice.CubeLattice.index_label`: the key sits
    between ``I_`` and ``(``, the view inside the parentheses.  Key
    attributes follow the same convention as views — single characters
    concatenate (``sp``), multi-character names join with commas
    (``I_month,day(month,day)``).

    >>> idx = parse_index_label("I_sp(ps)")
    >>> (str(idx.view), idx.key)
    ('ps', ('s', 'p'))
    """
    from repro.core.view import parse_view

    stripped = text.strip()
    if not (stripped.startswith("I_") and stripped.endswith(")") and "(" in stripped):
        raise ValueError(f"not an index label: {text!r}")
    key_text, view_text = stripped[2:-1].split("(", 1)
    view = parse_view(view_text)
    if "," in key_text:
        key = tuple(part.strip() for part in key_text.split(","))
    elif key_text in view.attrs:
        # a single multi-character attribute (only expressible when the
        # view itself was written with commas)
        key = (key_text,)
    else:
        key = tuple(key_text)
    return Index(view, key)


def enumerate_fat_indexes(view: View) -> Iterator[Index]:
    """Yield the ``m!`` fat indexes of an ``m``-attribute view.

    The empty view has no indexes.  Permutations are yielded in
    lexicographic order of the sorted attribute tuple, so the output is
    deterministic.
    """
    attrs = tuple(sorted(view.attrs))
    if not attrs:
        return
    for perm in permutations(attrs):
        yield Index(view, perm)


def enumerate_all_indexes(view: View) -> Iterator[Index]:
    """Yield every index on ``view``: all orderings of all non-empty subsets.

    An ``m``-attribute view has ``sum_{r=1..m} C(m, r) * r!`` such indexes
    (→ ``(e−1)·m!`` for large ``m``).  Provided for the pruning ablation;
    algorithms normally use only :func:`enumerate_fat_indexes`.
    """
    attrs = tuple(sorted(view.attrs))
    for r in range(1, len(attrs) + 1):
        for perm in permutations(attrs, r):
            yield Index(view, perm)


def prune_prefix_dominated(indexes: Iterable[Index]) -> list:
    """Drop every index whose key is a proper prefix of another's key.

    Under the paper's size model (all indexes on a view cost the same
    space) a prefix-dominated index is never preferable — the longer index
    answers every query at most as expensively.  Applied to the full index
    universe of a view this leaves exactly the fat indexes; applied to an
    arbitrary candidate list it leaves the maximal-key representatives.
    """
    indexes = list(indexes)
    kept = []
    for idx in indexes:
        dominated = any(
            idx is not other and idx.is_prefix_of(other) and idx != other
            for other in indexes
        )
        if not dominated and idx not in kept:
            kept.append(idx)
    return kept


def count_fat_indexes(n_dims: int) -> int:
    """Total fat indexes of an ``n``-dimensional cube.

    Each ``r``-attribute view contributes ``r!`` fat indexes, so the total
    is ``sum_{r=1..n} C(n, r) * r! = n! * sum_{j=0..n-1} 1/j!`` which
    approaches ``e·n!`` — the paper's "about 2·n!" (Section 3.5).
    """
    if n_dims < 0:
        raise ValueError("n_dims must be nonnegative")
    return sum(math.comb(n_dims, r) * math.factorial(r) for r in range(1, n_dims + 1))


def count_all_indexes(n_dims: int) -> int:
    """Total indexes (all orderings of all subsets of all views).

    ``sum over views V of sum_{r=1..|V|} C(|V|, r) * r!`` — the paper's
    "about 3·n!" (Section 3.5).
    """
    if n_dims < 0:
        raise ValueError("n_dims must be nonnegative")
    total = 0
    for m in range(0, n_dims + 1):
        per_view = sum(math.comb(m, r) * math.factorial(r) for r in range(1, m + 1))
        total += math.comb(n_dims, m) * per_view
    return total
