"""Slice queries over a data cube (Section 3.2 of the paper).

A *slice query* ``γ_A σ_B`` asks for the measure grouped by the attributes
in ``A`` after selecting (fixing a constant for) each attribute in ``B``.
``A`` and ``B`` are disjoint.  A query with ``B = ∅`` asks for a whole
subcube and is a special case of a slice query.

Every slice query is *associated* with the smallest view able to answer it:
the view whose attribute set is exactly ``A ∪ B``.  An ``n``-dimensional
cube has ``3^n`` slice queries: each dimension is either a group-by
attribute, a selection attribute, or absent.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.core.view import View


class SliceQuery:
    """A slice query ``γ_A σ_B`` with group-by set ``A``, selection set ``B``.

    >>> q = SliceQuery(groupby=["c"], selection=["p", "s"])
    >>> str(q)
    'γ(c)σ(ps)'
    >>> q.view == View.of("c", "p", "s")
    True
    """

    __slots__ = ("_groupby", "_selection", "_view", "_hash")

    def __init__(self, groupby: Iterable[str] = (), selection: Iterable[str] = ()):
        groupby = frozenset(groupby)
        selection = frozenset(selection)
        overlap = groupby & selection
        if overlap:
            raise ValueError(
                f"group-by and selection attributes must be disjoint; "
                f"both contain {sorted(overlap)}"
            )
        self._groupby = groupby
        self._selection = selection
        self._view = View(groupby | selection)
        self._hash = hash((self._groupby, self._selection))

    @property
    def groupby(self) -> frozenset:
        """The output (group-by) attributes ``A``."""
        return self._groupby

    @property
    def selection(self) -> frozenset:
        """The selection (where-clause) attributes ``B``."""
        return self._selection

    @property
    def attrs(self) -> frozenset:
        """All attributes mentioned by the query, ``A ∪ B``."""
        return self._view.attrs

    @property
    def view(self) -> View:
        """The smallest view that can answer this query (attrs = A ∪ B)."""
        return self._view

    @property
    def is_subcube_query(self) -> bool:
        """True when the query asks for an entire subcube (``B = ∅``)."""
        return not self._selection

    def answerable_by(self, view: View) -> bool:
        """The computability relation ``Q ≪ V``: true iff ``A ∪ B ⊆ attrs(V)``."""
        return self.attrs <= view.attrs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SliceQuery):
            return NotImplemented
        return (
            self._groupby == other._groupby and self._selection == other._selection
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        def fmt(attrs: frozenset) -> str:
            if not attrs:
                return ""
            parts = sorted(attrs)
            joined = "".join(parts) if all(len(a) == 1 for a in parts) else ",".join(parts)
            return joined

        return f"γ({fmt(self._groupby)})σ({fmt(self._selection)})"

    def __repr__(self) -> str:
        return f"SliceQuery({str(self)})"


def enumerate_slice_queries(dimensions: Sequence[str]) -> Iterator[SliceQuery]:
    """Yield all ``3^n`` slice queries over the given dimensions.

    Each dimension independently is a group-by attribute, a selection
    attribute, or absent.  Queries are yielded grouped by their associated
    view (smallest first), with a deterministic order.

    >>> qs = list(enumerate_slice_queries(["p", "s"]))
    >>> len(qs)
    9
    """
    dims = tuple(dimensions)
    if len(set(dims)) != len(dims):
        raise ValueError(f"duplicate dimensions: {dims}")
    for r in range(len(dims) + 1):
        for attrs in combinations(dims, r):
            attr_set = frozenset(attrs)
            # every subset of attrs may be the selection part
            for k in range(len(attrs) + 1):
                for sel in combinations(attrs, k):
                    yield SliceQuery(groupby=attr_set - set(sel), selection=sel)


def count_slice_queries(n_dims: int) -> int:
    """Number of slice queries of an ``n``-dimensional cube: ``3^n``."""
    if n_dims < 0:
        raise ValueError("n_dims must be nonnegative")
    return 3**n_dims


def queries_for_view(view: View) -> Iterator[SliceQuery]:
    """Yield the ``2^r`` slice queries associated with an ``r``-dim view.

    These are the queries whose attribute set is exactly the view's
    attributes — any subset of which may appear in the selection part.
    """
    attrs = tuple(sorted(view.attrs))
    for k in range(len(attrs) + 1):
        for sel in combinations(attrs, k):
            yield SliceQuery(groupby=view.attrs - set(sel), selection=sel)
