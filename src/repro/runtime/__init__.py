"""Resilient selection runtime: budgets, checkpoints, graceful stops.

PR 1 made 7-8 dimension cubes feasible, which means advisor runs now
last minutes.  The greedy algorithms of the paper are naturally
*anytime* — every committed stage is a valid selection with monotonically
growing benefit — so partial work is always salvageable.  This package
builds the salvage path:

:class:`RunContext`
    A cooperative execution context threaded through every selection
    algorithm.  At each committed stage boundary it checkpoints the run
    and enforces wall-clock deadlines, memory budgets, and pending
    SIGINT/SIGTERM requests, raising a typed :class:`RuntimeStop` that
    still carries the best-so-far :class:`~repro.core.selection.SelectionResult`.

:mod:`repro.runtime.checkpoint`
    The JSON checkpoint format: algorithm config, graph fingerprint,
    picked structures stage by stage, and the stage counter.  A resumed
    run replays the recorded picks through the (deterministic)
    :class:`~repro.core.benefit.BenefitEngine` and continues, producing
    selections bit-identical to an uninterrupted run.

:mod:`repro.runtime.faults`
    A deterministic fault-injection harness: kill a run at every stage
    boundary, resume from the checkpoint, and assert the resumed
    selection equals the golden uninterrupted one — across dense/sparse
    backends with lazy stage loops on and off.
"""

from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointError,
    StageRecord,
    algorithm_from_config,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.context import (
    BudgetExceeded,
    InjectedFault,
    Interrupted,
    RunContext,
    RuntimeStop,
)

__all__ = [
    "BudgetExceeded",
    "Checkpoint",
    "CheckpointError",
    "InjectedFault",
    "Interrupted",
    "RunContext",
    "RuntimeStop",
    "StageRecord",
    "algorithm_from_config",
    "load_checkpoint",
    "save_checkpoint",
]
