"""Fault-injection harness: kill a run at every stage boundary, resume,
and assert the resumed selection is bit-identical to the golden run.

The harness is the executable proof behind the checkpoint design:

1. run the algorithm uninterrupted (the *golden* run) under a counting
   :class:`~repro.runtime.context.RunContext` to learn how many stage
   boundaries it crosses;
2. for every boundary ``k``, re-run with ``fault_stage=k`` — the context
   raises :class:`~repro.runtime.context.InjectedFault` right after the
   k-th checkpoint is taken, exactly like a crash between stages;
3. round-trip that checkpoint through JSON (what a real crash leaves on
   disk), rebuild the algorithm from its recorded config, and resume on
   a fresh engine state;
4. compare the resumed result against the golden run — structure ids in
   pick order, total benefit, and τ must match *exactly* (``==`` on
   floats, no tolerance).

The matrix covers every selection algorithm on the dense and sparse
engine backends with the lazy stage loops forced on and off, and — via
``workers_modes`` / ``--workers`` — with the stage scans running in a
forced process pool, proving a kill with a live pool still checkpoints,
drains, and resumes bit-identically (at any worker count).  Run it from
the command line for the CI smoke::

    PYTHONPATH=src python -m repro.runtime.faults --dims 4 --workers 1,2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.benefit import BenefitEngine
from repro.core.qvgraph import QueryViewGraph
from repro.core.selection import SelectionResult
from repro.runtime.checkpoint import (
    Checkpoint,
    algorithm_from_config,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.context import InjectedFault, RunContext


@dataclass(frozen=True)
class FaultCase:
    """One kill-and-resume experiment: algorithm × backend × lazy ×
    workers × k."""

    algorithm: str
    backend: str
    lazy: bool
    stage: int
    n_stages: int
    ok: bool
    workers: int = 1
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        mode = "lazy" if self.lazy else "eager"
        base = (
            f"[{status}] {self.algorithm} / {self.backend}/{mode}/"
            f"w{self.workers} killed at {self.stage}/{self.n_stages}"
        )
        return base + (f": {self.detail}" if self.detail else "")


def compare_results(golden: SelectionResult, resumed: SelectionResult) -> str:
    """Empty string when the resumed run is bit-identical, else why not."""
    if resumed.selected != golden.selected:
        return (
            f"selected differ: resumed {list(resumed.selected)} "
            f"vs golden {list(golden.selected)}"
        )
    if resumed.benefit != golden.benefit:
        return (
            f"benefit differs: resumed {resumed.benefit!r} "
            f"vs golden {golden.benefit!r}"
        )
    if resumed.tau != golden.tau:
        return f"tau differs: resumed {resumed.tau!r} vs golden {golden.tau!r}"
    if resumed.space_used != golden.space_used:
        return (
            f"space_used differs: resumed {resumed.space_used!r} "
            f"vs golden {golden.space_used!r}"
        )
    if resumed.interrupted:
        return "resumed run still reports interrupted=True"
    return ""


def _roundtrip(checkpoint: Checkpoint) -> Checkpoint:
    """Serialize to JSON on disk and load back — the crash-recovery path."""
    fd, path = tempfile.mkstemp(prefix="repro-fault-", suffix=".json")
    os.close(fd)
    try:
        save_checkpoint(checkpoint, path)
        return load_checkpoint(path)
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


def fault_scan(
    run: Callable[[Optional[RunContext]], SelectionResult],
    *,
    algorithm: str,
    backend: str,
    lazy: bool,
    workers: int = 1,
    rebuild: bool = True,
) -> Tuple[SelectionResult, List[FaultCase]]:
    """Kill ``run`` at every stage boundary and resume; return the cases.

    ``run`` takes an optional context and executes one full selection on
    a deterministic engine (the harness calls it repeatedly).  With
    ``rebuild`` the resumed algorithm is reconstructed from the
    checkpoint's config block via :func:`algorithm_from_config`,
    exercising the cold-start path a real recovery would take.
    """
    golden_context = RunContext()
    golden = run(golden_context)
    n_stages = golden_context.stage_counter
    cases: List[FaultCase] = []
    for k in range(1, n_stages + 1):
        try:
            run(RunContext(fault_stage=k))
        except InjectedFault as fault:
            checkpoint = fault.checkpoint
            detail = ""
            if getattr(fault, "pre_engine", False):
                # killed at the mining boundary, before anything committed:
                # a real crash there leaves no checkpoint, and recovery is
                # simply starting over — which must land on the golden
                # selection (mining is deterministic)
                resumed = run(RunContext())
                detail = compare_results(golden, resumed)
            elif fault.result is None or not fault.result.interrupted:
                detail = "fault did not carry an interrupted partial result"
            elif checkpoint is None:
                detail = "fault carried no checkpoint"
            if not detail and not getattr(fault, "pre_engine", False):
                checkpoint = _roundtrip(checkpoint)
                if rebuild:
                    algorithm_from_config(checkpoint.algorithm)
                resumed = run(RunContext(resume_from=checkpoint))
                detail = compare_results(golden, resumed)
        else:
            detail = f"no fault fired at boundary {k}"
        cases.append(
            FaultCase(
                algorithm=algorithm,
                backend=backend,
                lazy=lazy,
                stage=k,
                n_stages=n_stages,
                ok=not detail,
                workers=workers,
                detail=detail,
            )
        )
    return golden, cases


# --------------------------------------------------------------- the matrix


def default_algorithms(lazy: bool, workers: int = 1) -> List[Tuple[str, object]]:
    """The selection algorithms under test, built for one lazy mode and
    worker count (local search is always serial — it restores engine
    state mid-run, which a pool's shared snapshot would not follow)."""
    from repro.algorithms import (
        HRUGreedy,
        InnerLevelGreedy,
        LocalSearchRefiner,
        RGreedy,
        TwoStep,
    )

    return [
        ("RGreedy(r=2)", RGreedy(2, lazy=lazy, workers=workers)),
        ("HRUGreedy", HRUGreedy(lazy=lazy, workers=workers)),
        ("InnerLevelGreedy", InnerLevelGreedy(lazy=lazy, workers=workers)),
        ("TwoStep", TwoStep(lazy=lazy, workers=workers)),
        ("LocalSearchRefiner", LocalSearchRefiner(lazy=lazy)),
    ]


def top_view_of(engine: BenefitEngine) -> str:
    """Name of the largest view — the seed every cube run materializes."""
    view_ids = engine.view_ids()
    spaces = engine.spaces[view_ids]
    return engine.name_of(int(view_ids[int(spaces.argmax())]))


def fault_matrix(
    graph: QueryViewGraph,
    space: float,
    *,
    backends: Sequence[str] = ("dense", "sparse"),
    lazy_modes: Sequence[bool] = (False, True),
    workers_modes: Sequence[int] = (1,),
    algorithms: Optional[Callable[..., List[Tuple[str, object]]]] = None,
    seed: Optional[Sequence[str]] = None,
) -> List[FaultCase]:
    """Run the full kill/resume matrix; returns every case (ok or not).

    The :class:`~repro.algorithms.local_search.LocalSearchRefiner` entry
    refines a 1-greedy base selection (its natural usage); all other
    algorithms run from the seed (default: the top view).
    ``workers_modes`` adds a column per worker count: ``2`` (or more)
    forces a process pool even below the auto threshold, so the kill
    lands while shared-memory segments are live.
    """
    from repro.algorithms import RGreedy

    make_algorithms = algorithms or default_algorithms
    cases: List[FaultCase] = []
    for backend in backends:
        engine = BenefitEngine(graph, backend=backend)
        run_seed = list(seed) if seed is not None else [top_view_of(engine)]
        base = RGreedy(1).run(engine, space, seed=run_seed)
        for workers in workers_modes:
            for lazy in lazy_modes:
                for label, algorithm in make_algorithms(lazy, workers):
                    if hasattr(algorithm, "refine"):
                        def run(context=None, _a=algorithm):
                            return _a.refine(
                                engine,
                                space,
                                base.selected,
                                protected=run_seed,
                                context=context,
                            )
                    else:
                        def run(context=None, _a=algorithm):
                            return _a.run(
                                engine, space, seed=run_seed, context=context
                            )
                    __, scan = fault_scan(
                        run,
                        algorithm=label,
                        backend=backend,
                        lazy=lazy,
                        workers=workers,
                    )
                    cases.extend(scan)
    return cases


# ------------------------------------------------------------ pruned matrix


def mined_cube_instance(
    n_dims: int = 4,
    n_entries: int = 400,
    rng: int = 7,
) -> tuple:
    """A deterministic pruned-advise instance: ``(lattice, log, params)``.

    Cardinalities match :func:`_cube_graph`; the log is a fixed-seed
    Zipf workload, so mining it is reproducible run over run — the
    property the mining kill/resume boundary exists to verify.
    """
    from repro.cube.query_log import generate_query_log
    from repro.cube.schema import CubeSchema, Dimension
    from repro.estimation.sizes import analytical_lattice

    cards = [4 + 2 * i for i in range(n_dims)]
    schema = CubeSchema(
        [Dimension(chr(ord("a") + i), c) for i, c in enumerate(cards)]
    )
    lattice = analytical_lattice(schema, 0.1 * schema.dense_cells)
    log = generate_query_log(schema, n_entries, rng=rng)
    params = {"support": 0.02, "similarity": 0.5, "max_indexes_per_view": 4}
    return lattice, log, params


def pruned_fault_matrix(
    n_dims: int = 4,
    *,
    backends: Sequence[str] = ("dense", "sparse"),
    lazy_modes: Sequence[bool] = (False, True),
    workers_modes: Sequence[int] = (1,),
    budget_fraction: float = 0.05,
) -> List[FaultCase]:
    """Kill/resume matrix for *pruned* (workload-mined) advise runs.

    Every run re-mines the log from scratch under its context — the
    mining stage is boundary 1, so ``fault_stage=1`` kills before any
    engine exists (recovery: start over, land on the golden selection)
    and every later kill resumes from a checkpoint whose ``extra`` block
    carries the mining record, which
    :meth:`~repro.runtime.context.RunContext.mining_boundary` verifies
    fingerprint-exactly before a single stage replays.
    """
    from repro.algorithms import InnerLevelGreedy, RGreedy
    from repro.mining import mine_candidates

    lattice, log, params = mined_cube_instance(n_dims)
    probe_mined = mine_candidates(log, lattice.schema.names, **params)
    probe = BenefitEngine(QueryViewGraph.from_mined(lattice, probe_mined))
    space = smoke_budget(probe, budget_fraction)
    run_seed = [top_view_of(probe)]

    cases: List[FaultCase] = []
    for backend in backends:
        for workers in workers_modes:
            for lazy in lazy_modes:
                algorithms = [
                    ("RGreedy(r=1)", RGreedy(1, lazy=lazy, workers=workers)),
                    ("RGreedy(r=2)", RGreedy(2, lazy=lazy, workers=workers)),
                    (
                        "InnerLevelGreedy",
                        InnerLevelGreedy(lazy=lazy, workers=workers),
                    ),
                ]
                for label, algorithm in algorithms:

                    def run(context=None, _a=algorithm, _b=backend):
                        mined = mine_candidates(
                            log, lattice.schema.names, **params
                        )
                        if context is not None:
                            context.mining_boundary(
                                {"fingerprint": mined.fingerprint(), **params}
                            )
                        engine = BenefitEngine(
                            QueryViewGraph.from_mined(lattice, mined),
                            backend=_b,
                        )
                        return _a.run(engine, space, seed=run_seed, context=context)

                    __, scan = fault_scan(
                        run,
                        algorithm=f"pruned:{label}",
                        backend=backend,
                        lazy=lazy,
                        workers=workers,
                    )
                    cases.extend(scan)
    return cases


# ----------------------------------------------------------------- CLI smoke


def _cube_graph(n_dims: int) -> QueryViewGraph:
    """A d-dimensional cube instance (cardinalities 4, 6, 8, …)."""
    from repro.cube.schema import CubeSchema, Dimension
    from repro.estimation.sizes import analytical_lattice

    cards = [4 + 2 * i for i in range(n_dims)]
    schema = CubeSchema(
        [Dimension(chr(ord("a") + i), c) for i, c in enumerate(cards)]
    )
    return QueryViewGraph.from_cube(
        analytical_lattice(schema, 0.1 * schema.dense_cells)
    )


def smoke_budget(engine: BenefitEngine, fraction: float) -> float:
    """Top view plus ``fraction`` of the remaining structure space."""
    top_space = float(engine.spaces[engine.view_ids()].max())
    return top_space + fraction * (float(engine.spaces.sum()) - top_space)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.faults",
        description="Kill selection runs at every stage boundary and "
        "assert resume is bit-identical.",
    )
    parser.add_argument(
        "--dims", type=int, default=4, help="cube dimensions (default 4)"
    )
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.05,
        help="budget beyond the top view, as a fraction of the remaining "
        "structure space (default 0.05; larger means more stages)",
    )
    parser.add_argument(
        "--backends",
        default="dense,sparse",
        help="comma-separated engine backends (default dense,sparse)",
    )
    parser.add_argument(
        "--workers",
        default="1",
        help="comma-separated worker counts to run the matrix under "
        "(default 1; e.g. 1,2 adds a forced-pool column)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the case list as JSON"
    )
    parser.add_argument(
        "--pruned",
        action="store_true",
        help="also run the pruned (workload-mined) advise matrix, with "
        "the mining stage as kill/resume boundary 1",
    )
    args = parser.parse_args(argv)

    graph = _cube_graph(args.dims)
    probe = BenefitEngine(graph)
    space = smoke_budget(probe, args.budget_fraction)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    workers_modes = [
        int(w.strip()) for w in args.workers.split(",") if w.strip()
    ]
    cases = fault_matrix(
        graph, space, backends=backends, workers_modes=workers_modes
    )
    n_full = len(cases)
    if args.pruned:
        cases += pruned_fault_matrix(
            args.dims,
            backends=backends,
            workers_modes=workers_modes,
            budget_fraction=args.budget_fraction,
        )
    failures = [case for case in cases if not case.ok]
    if args.json:
        print(json.dumps([case.__dict__ for case in cases], indent=2))
    else:
        for case in failures:
            print(case, file=sys.stderr)
        pruned_note = (
            f" (+{len(cases) - n_full} pruned-advise cases)" if args.pruned else ""
        )
        print(
            f"fault matrix: {len(cases)} kill/resume cases over "
            f"{len(backends)} backend(s) x workers {workers_modes}, "
            f"d={args.dims}{pruned_note}; {len(failures)} failure(s)"
        )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke
    sys.exit(main())
