"""The cooperative execution context for long selection runs.

Every selection algorithm accepts an optional :class:`RunContext`.  At
each *stage boundary* — right after a stage's structures are committed —
the context:

1. appends the stage to its record of the run,
2. writes a :class:`~repro.runtime.checkpoint.Checkpoint` (in memory,
   and to ``checkpoint_path`` when configured),
3. fires the injected fault, if one is armed on this boundary (the
   fault-injection harness uses this to kill runs deterministically),
4. enforces the wall-clock deadline, the memory budget, and any pending
   SIGINT/SIGTERM — raising :class:`BudgetExceeded` or
   :class:`Interrupted`.

Checks are *cooperative*: they run between stages, never mid-commit, so
a stop always leaves a consistent, checkpointed selection.  The raised
:class:`RuntimeStop` carries the best-so-far
:class:`~repro.core.selection.SelectionResult` (attached by the
algorithm on the way out) and the last checkpoint.

Resume: construct the context with ``resume_from=<Checkpoint>`` and run
the same algorithm on the same graph and budget.  Recorded stages are
replayed through the engine (cheap commits — the expensive stage
searches are skipped) and the run continues bit-identically.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointError,
    StageRecord,
    make_checkpoint,
    save_checkpoint,
)

try:  # unavailable on some platforms (Windows); memory budgets degrade
    import resource as _resource
except ImportError:  # pragma: no cover - POSIX containers always have it
    _resource = None

#: Scope label of the seed stage in checkpoint records.
SEED_SCOPE = "seed"

#: Key under which the mining stage's record lives in checkpoint extras.
MINING_EXTRA_KEY = "mining"


def _strip_workers(config: Dict) -> Dict:
    """An algorithm config with the ``workers`` param removed (it does
    not affect what gets selected, only how fast)."""
    params = {
        key: value
        for key, value in dict(config.get("params", {})).items()
        if key != "workers"
    }
    return {**config, "params": params}


class RuntimeStop(Exception):
    """Base of all cooperative stops.

    Attributes
    ----------
    result:
        The best-so-far :class:`~repro.core.selection.SelectionResult`,
        attached by the interrupted algorithm (annotated with
        ``interrupted=True``).  Every committed stage is a valid
        selection, so this is always usable.
    checkpoint:
        The last :class:`~repro.runtime.checkpoint.Checkpoint` taken
        before the stop (``None`` when no stage had committed yet).
    """

    #: Machine-readable stop reason recorded on the partial result.
    reason = "stopped"

    def __init__(self, message: str, checkpoint: Optional[Checkpoint] = None):
        super().__init__(message)
        self.checkpoint = checkpoint
        self.result = None


class BudgetExceeded(RuntimeStop):
    """A wall-clock deadline or memory budget ran out."""

    reason = "budget-exceeded"

    def __init__(
        self,
        message: str,
        checkpoint: Optional[Checkpoint] = None,
        budget: str = "deadline",
    ):
        super().__init__(message, checkpoint)
        self.budget = budget


class Interrupted(RuntimeStop):
    """SIGINT/SIGTERM arrived; the in-flight stage was finished first."""

    reason = "interrupted"


class InjectedFault(RuntimeStop):
    """A deterministic fault from the fault-injection harness."""

    reason = "injected-fault"


def max_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    Linux reports ``ru_maxrss`` in KiB, macOS in bytes.  Returns 0.0
    where the ``resource`` module is unavailable.
    """
    if _resource is None:  # pragma: no cover - non-POSIX only
        return 0.0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux containers
        return peak / 2**20
    return peak / 1024.0


class RunContext:
    """Budgets, checkpoints, and stop requests for one selection run.

    Parameters
    ----------
    deadline:
        Wall-clock budget in seconds, measured from construction.  Runs
        past it raise :class:`BudgetExceeded` at the next stage boundary.
    memory_limit_mb:
        Peak-RSS budget in MiB, checked cooperatively at stage
        boundaries (peak is monotonic: once exceeded, the run stops at
        the next boundary).
    checkpoint_path:
        Where to write the JSON checkpoint (atomic replace).  ``None``
        keeps checkpoints in memory only (:attr:`last_checkpoint`),
        which the fault harness uses.  On-disk writes are throttled to
        one per ``checkpoint_interval`` seconds so checkpointing stays
        cheap on fast stages; a cooperative stop always flushes the
        current boundary's checkpoint before raising, so at most
        ``checkpoint_interval`` seconds of work are lost to a hard
        crash.
    checkpoint_interval:
        Minimum seconds between on-disk checkpoint writes (default
        0.25; ``0`` writes at every stage boundary).
    resume_from:
        A loaded :class:`Checkpoint` to continue from.  The context
        verifies the algorithm config, graph fingerprint, and budget
        match, then serves the recorded stages for replay.
    fault_stage:
        Arm a deterministic :class:`InjectedFault` at this stage
        boundary (1-based count of boundaries).  Test/harness use only.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        checkpoint_path=None,
        resume_from: Optional[Checkpoint] = None,
        fault_stage: Optional[int] = None,
        clock=time.monotonic,
        checkpoint_interval: float = 0.25,
    ):
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        if memory_limit_mb is not None and memory_limit_mb <= 0:
            raise ValueError(
                f"memory_limit_mb must be positive, got {memory_limit_mb}"
            )
        if checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0, got {checkpoint_interval}"
            )
        self.deadline = deadline
        self.memory_limit_mb = memory_limit_mb
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.fault_stage = fault_stage
        self._clock = clock
        self.started = clock()
        self.stage_counter = 0
        self._resume = resume_from
        self._replay: Deque[StageRecord] = deque(
            resume_from.stages if resume_from is not None else ()
        )
        self._records: List[StageRecord] = []
        self._bound: Optional[Dict] = None
        self._space_budget: Optional[float] = None
        self._seed: tuple = ()
        self._stop_signal: Optional[int] = None
        # the last stage boundary's cheap snapshot; the full Checkpoint
        # is materialized lazily (everything else it needs is static)
        self._boundary: Optional[tuple] = None
        self._materialized: Optional[Checkpoint] = None
        self._last_write: Optional[float] = None
        self._evaluators: List = []
        self._workers: Optional[int] = None
        self._mining_record: Optional[Dict] = None

    # -------------------------------------------------------------- binding

    def bind(self, algorithm, engine, space_budget: float) -> None:
        """Attach the outermost algorithm and its engine to this context.

        The first bind wins: composite algorithms (TwoStep) bind before
        delegating to their sub-algorithms, so the checkpoint names the
        algorithm the operator actually invoked.  When resuming, the
        checkpoint's config, fingerprint, and budget must match.
        """
        if self._bound is not None:
            return
        config = algorithm.config()
        self._bound = config
        self._space_budget = float(space_budget)
        self._engine = engine
        if self._resume is not None:
            # workers is an execution knob, not part of the algorithm's
            # identity: parallel and serial runs select identically, so a
            # checkpoint from either resumes under the other
            if _strip_workers(self._resume.algorithm) != _strip_workers(config):
                raise CheckpointError(
                    f"checkpoint was written by {self._resume.algorithm!r}, "
                    f"cannot resume with {config!r}"
                )
            fingerprint = engine.fingerprint()
            if self._resume.fingerprint != fingerprint:
                raise CheckpointError(
                    "checkpoint graph fingerprint does not match this "
                    f"instance ({self._resume.fingerprint[:24]}… vs "
                    f"{fingerprint[:24]}…); was the cube document or "
                    "index universe changed?"
                )
            if self._resume.space_budget != self._space_budget:
                raise CheckpointError(
                    f"checkpoint space budget {self._resume.space_budget:g} "
                    f"differs from this run's {self._space_budget:g}"
                )

    def set_seed(self, seed_names: Sequence[str]) -> None:
        """Record (and on resume, verify) the run's seed structures."""
        names = tuple(seed_names)
        if self._resume is not None and self._resume.seed != names:
            raise CheckpointError(
                f"checkpoint seed {list(self._resume.seed)} differs from "
                f"this run's seed {list(names)}"
            )
        self._seed = names

    @property
    def resume_checkpoint(self) -> Optional[Checkpoint]:
        return self._resume

    def register_evaluator(self, evaluator) -> None:
        """Track a run's stage evaluator so cooperative stops drain its
        worker pool (and free its shared-memory segments) right after
        the stop's checkpoint is flushed, and so checkpoints record the
        resolved worker count."""
        if evaluator not in self._evaluators:
            self._evaluators.append(evaluator)
        self._workers = int(getattr(evaluator, "workers", 1))

    def _drain_evaluators(self) -> None:
        for evaluator in self._evaluators:
            try:
                evaluator.close()
            except Exception:  # pragma: no cover - stop path must not mask
                pass

    # --------------------------------------------------------------- mining

    def mining_boundary(self, record: Dict) -> None:
        """Mark the workload-mining stage of a pruned advise run.

        Called once, after mining and *before* :meth:`bind` (the engine
        does not exist until the mined graph is built).  ``record`` —
        the mined set's fingerprint plus its parameters and log source —
        is carried in every subsequent checkpoint's ``extra`` block, so
        a resumed run can re-mine and *prove* (fingerprint equality,
        verified here) that it rebuilt the identical candidate space
        before any stage replays against the graph fingerprint.

        The mining stage is a first-class kill/resume boundary: it
        counts toward ``fault_stage`` and runs the budget checks, same
        as every stage boundary.  A fault or stop raised here carries no
        checkpoint (nothing has committed yet — the resume protocol for
        this boundary is simply "start over"); such stops are tagged
        ``pre_engine=True`` for the fault harness.
        """
        record = dict(record)
        if self._resume is not None:
            previous = self._resume.extra.get(MINING_EXTRA_KEY)
            if previous != record:
                raise CheckpointError(
                    "checkpoint mining record does not match this run's "
                    f"re-mined candidates ({previous!r} vs {record!r}); "
                    "did the query log or mining parameters change?"
                )
        self._mining_record = record
        self.stage_counter += 1
        if self.fault_stage is not None and self.stage_counter == self.fault_stage:
            fault = InjectedFault(
                f"injected fault at mining boundary {self.stage_counter}",
                self.last_checkpoint,
            )
            fault.pre_engine = self.last_checkpoint is None
            raise fault
        try:
            self.check()
        except RuntimeStop as stop:
            stop.pre_engine = self.last_checkpoint is None
            raise

    @property
    def mining_record(self) -> Optional[Dict]:
        """The mining-stage record, when this run mined its candidates."""
        return self._mining_record

    # --------------------------------------------------------------- replay

    def replay_next(self, scope: str) -> Optional[StageRecord]:
        """Pop the next recorded stage if it belongs to ``scope``.

        Scope-gated so each loop of a composite algorithm consumes
        exactly the stages it originally committed, in order.
        """
        if self._replay and self._replay[0].scope == scope:
            return self._replay.popleft()
        return None

    @property
    def replaying(self) -> bool:
        return bool(self._replay)

    # ------------------------------------------------------ stage boundaries

    def record_stage(self, record: StageRecord) -> None:
        """Append a stage to the run record (no checkpoint/checks yet)."""
        self._records.append(record)

    def stage_boundary(
        self,
        engine,
        selected: Optional[Sequence[str]] = None,
        extra: Optional[Dict] = None,
        space_used: Optional[float] = None,
    ) -> None:
        """Checkpoint the run and enforce the budgets.

        Called after every committed stage.  ``selected`` overrides the
        picked-order derivation from the records (local search passes
        its current set explicitly); ``extra`` is merged into the
        checkpoint's extra block; ``space_used`` lets a caller that
        already tracks its running space total skip the engine re-sum.

        Only a cheap snapshot is taken here; the full
        :class:`Checkpoint` materializes lazily on access or write.  A
        stop raised from this boundary always flushes to disk first.
        """
        if self._bound is None:
            raise RuntimeError("stage_boundary before bind()")
        self.stage_counter += 1
        extra_dict = dict(extra) if extra else {}
        if self._workers is not None:
            extra_dict.setdefault("workers", self._workers)
        if self._mining_record is not None:
            extra_dict.setdefault(MINING_EXTRA_KEY, self._mining_record)
        self._boundary = (
            self.stage_counter,
            len(self._records),
            float(engine.space_used()) if space_used is None else space_used,
            tuple(selected) if selected is not None else None,
            extra_dict,
        )
        self._engine = engine
        self._materialized = None
        wrote = self._write_checkpoint(force=self.checkpoint_interval == 0)
        try:
            if (
                self.fault_stage is not None
                and self.stage_counter == self.fault_stage
            ):
                raise InjectedFault(
                    f"injected fault at stage boundary {self.stage_counter}",
                    self.last_checkpoint,
                )
            self.check()
        except RuntimeStop:
            if not wrote:
                self._write_checkpoint(force=True)
            # checkpoint is safely on disk; now drain any worker pool so
            # the stop leaves no processes or /dev/shm segments behind
            self._drain_evaluators()
            raise

    @property
    def last_checkpoint(self) -> Optional[Checkpoint]:
        """The checkpoint of the most recent stage boundary.

        Materialized on demand from the boundary snapshot: the stage
        records up to the boundary are immutable, the name→id mapping
        and graph fingerprint are static, and the boundary's space
        accounting was captured eagerly — so the result is identical no
        matter how far the engine has advanced since.
        """
        if self._boundary is None:
            return None
        if self._materialized is None:
            counter, n_records, space_used, selected, extra = self._boundary
            self._materialized = make_checkpoint(
                self._engine,
                algorithm=self._bound,
                space_budget=self._space_budget,
                seed=self._seed,
                stage_counter=counter,
                records=self._records[:n_records],
                selected=selected,
                extra=extra,
                space_used=space_used,
            )
        return self._materialized

    def _write_checkpoint(self, force: bool) -> bool:
        """Write the current checkpoint if due (or forced); True if written."""
        if self.checkpoint_path is None or self._boundary is None:
            return False
        now = self._clock()
        if (
            not force
            and self._last_write is not None
            and now - self._last_write < self.checkpoint_interval
        ):
            return False
        save_checkpoint(self.last_checkpoint, self.checkpoint_path)
        self._last_write = now
        return True

    # --------------------------------------------------------------- checks

    def elapsed(self) -> float:
        return self._clock() - self.started

    def check(self) -> None:
        """Raise the appropriate :class:`RuntimeStop` if a stop is due."""
        if self._stop_signal is not None:
            name = signal.Signals(self._stop_signal).name
            raise Interrupted(
                f"received {name}; stopping after the in-flight stage",
                self.last_checkpoint,
            )
        if self.deadline is not None:
            elapsed = self.elapsed()
            if elapsed > self.deadline:
                raise BudgetExceeded(
                    f"wall-clock deadline exceeded "
                    f"({elapsed:.2f}s > {self.deadline:g}s)",
                    self.last_checkpoint,
                    budget="deadline",
                )
        if self.memory_limit_mb is not None:
            rss = max_rss_mb()
            if rss > self.memory_limit_mb:
                raise BudgetExceeded(
                    f"memory budget exceeded "
                    f"(peak RSS {rss:.1f} MiB > {self.memory_limit_mb:g} MiB)",
                    self.last_checkpoint,
                    budget="memory",
                )

    # -------------------------------------------------------------- signals

    def request_stop(self, signum: int = signal.SIGINT) -> None:
        """Ask the run to stop at the next stage boundary (thread-safe)."""
        self._stop_signal = int(signum)

    @contextlib.contextmanager
    def handle_signals(self, signums=(signal.SIGINT, signal.SIGTERM)):
        """Install handlers that finish the in-flight stage, checkpoint,
        and stop — instead of dying mid-commit.

        Restores the previous handlers on exit.  Outside the main thread
        (where ``signal.signal`` raises), the context manager degrades
        to a no-op: stops can still be requested via
        :meth:`request_stop`.
        """
        previous = {}
        try:
            for signum in signums:
                previous[signum] = signal.signal(signum, self._on_signal)
        except ValueError:  # not in the main thread
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            previous = {}
        try:
            yield self
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _on_signal(self, signum, frame) -> None:
        self._stop_signal = signum

    def __repr__(self) -> str:
        return (
            f"RunContext(stage={self.stage_counter}, "
            f"deadline={self.deadline}, memory_limit_mb={self.memory_limit_mb}, "
            f"replaying={self.replaying})"
        )
