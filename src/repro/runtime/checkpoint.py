"""Stage-level checkpoints for selection runs (JSON on disk).

A checkpoint is written after every committed stage and captures
everything needed to continue the run in a fresh process:

* the **algorithm config** — class name plus constructor parameters, so
  :func:`algorithm_from_config` can rebuild the exact algorithm;
* the **graph fingerprint** — a SHA-256 over the compiled engine's
  structures, queries, and cost edges, so a checkpoint can never be
  replayed against a different (or differently-built) instance;
* the **stage records** — for each committed stage, its scope (which
  loop of the algorithm committed it), structure names, benefit, space,
  and τ after the commit;
* the **stage counter**, picked structure names/ids, and the space
  accounting (used and remaining against the budget).

Replay is deterministic: committing the recorded picks in order through
the :class:`~repro.core.benefit.BenefitEngine` reproduces the engine
state bitwise (the engine's maintained caches are exact), so a resumed
run continues to a selection bit-identical to an uninterrupted one.
The recorded benefits double as an integrity check during replay.

The format is versioned; see ``docs/API.md`` ("Selection runtime") for
the schema.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

CHECKPOINT_VERSION = 1
CHECKPOINT_KIND = "repro-selection-checkpoint"

PathLike = Union[str, Path]


class CheckpointError(ValueError):
    """A checkpoint is malformed or does not match the run it was fed to."""


@dataclass(frozen=True)
class StageRecord:
    """One committed stage as recorded in a checkpoint.

    ``scope`` names the loop that committed the stage (``"seed"``, the
    algorithm's stage loop, or ``"move"`` for local-search moves) so a
    composite algorithm like TwoStep replays each record in the loop
    that originally produced it.
    """

    scope: str
    structures: Tuple[str, ...]
    benefit: float
    space: float
    tau_after: float

    def to_dict(self) -> Dict:
        return {
            "scope": self.scope,
            "structures": list(self.structures),
            "benefit": self.benefit,
            "space": self.space,
            "tau_after": self.tau_after,
        }

    @staticmethod
    def from_dict(document: Dict) -> "StageRecord":
        try:
            return StageRecord(
                scope=str(document["scope"]),
                structures=tuple(document["structures"]),
                benefit=float(document["benefit"]),
                space=float(document["space"]),
                tau_after=float(document["tau_after"]),
            )
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed stage record: {exc}") from exc


@dataclass
class Checkpoint:
    """A resumable snapshot of a selection run at a stage boundary."""

    algorithm: Dict
    fingerprint: str
    space_budget: float
    seed: Tuple[str, ...]
    stage_counter: int
    selected: Tuple[str, ...]
    selected_ids: Tuple[int, ...]
    space_used: float
    remaining_space: float
    stages: Tuple[StageRecord, ...]
    extra: Dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "kind": CHECKPOINT_KIND,
            "algorithm": self.algorithm,
            "fingerprint": self.fingerprint,
            "space_budget": self.space_budget,
            "seed": list(self.seed),
            "stage_counter": self.stage_counter,
            "selected": list(self.selected),
            "selected_ids": list(self.selected_ids),
            "space_used": self.space_used,
            "remaining_space": self.remaining_space,
            "stages": [record.to_dict() for record in self.stages],
            "extra": self.extra,
        }

    @staticmethod
    def from_dict(document: Dict) -> "Checkpoint":
        if not isinstance(document, dict):
            raise CheckpointError("checkpoint document must be a JSON object")
        kind = document.get("kind")
        if kind != CHECKPOINT_KIND:
            raise CheckpointError(
                f"not a selection checkpoint (kind={kind!r}, "
                f"expected {CHECKPOINT_KIND!r})"
            )
        version = document.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        try:
            return Checkpoint(
                algorithm=dict(document["algorithm"]),
                fingerprint=str(document["fingerprint"]),
                space_budget=float(document["space_budget"]),
                seed=tuple(document["seed"]),
                stage_counter=int(document["stage_counter"]),
                selected=tuple(document["selected"]),
                selected_ids=tuple(int(i) for i in document["selected_ids"]),
                space_used=float(document["space_used"]),
                remaining_space=float(document["remaining_space"]),
                stages=tuple(
                    StageRecord.from_dict(r) for r in document["stages"]
                ),
                extra=dict(document.get("extra", {})),
            )
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


def save_checkpoint(checkpoint: Checkpoint, path: PathLike) -> None:
    """Write a checkpoint atomically (write-then-rename).

    A crash during the write leaves the previous checkpoint intact —
    the whole point of checkpointing is surviving exactly that.
    """
    path = Path(path)
    payload = json.dumps(checkpoint.to_dict(), indent=2) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read and validate a checkpoint file."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}")
    return Checkpoint.from_dict(document)


def algorithm_from_config(config: Dict):
    """Rebuild a selection algorithm from a checkpoint's config block.

    The config is ``{"class": <name>, "params": {...constructor kwargs}}``
    as produced by each algorithm's ``config()`` method.
    """
    from repro import algorithms as _algorithms

    known = {
        "RGreedy",
        "HRUGreedy",
        "InnerLevelGreedy",
        "TwoStep",
        "LocalSearchRefiner",
        "PickBySmallest",
        "MaintenanceAwareGreedy",
    }
    cls_name = config.get("class")
    if cls_name not in known:
        raise CheckpointError(
            f"checkpoint names unknown algorithm class {cls_name!r} "
            f"(known: {sorted(known)})"
        )
    cls = getattr(_algorithms, cls_name)
    params = config.get("params", {})
    if not isinstance(params, dict):
        raise CheckpointError("algorithm params must be an object")
    try:
        return cls(**params)
    except TypeError as exc:
        raise CheckpointError(
            f"cannot rebuild {cls_name} from checkpoint params {params!r}: {exc}"
        ) from exc


def records_picked_order(records: Sequence[StageRecord]) -> Tuple[str, ...]:
    """Concatenated structure names of replayable records, in pick order.

    Local-search ``"move"`` records hold human-readable move labels, not
    structure names, so they are excluded — algorithms that record moves
    pass their selection to the checkpoint explicitly.
    """
    return tuple(
        name
        for record in records
        if record.scope != "move"
        for name in record.structures
    )


def make_checkpoint(
    engine,
    *,
    algorithm: Dict,
    space_budget: float,
    seed: Sequence[str],
    stage_counter: int,
    records: Sequence[StageRecord],
    selected: Optional[Sequence[str]] = None,
    extra: Optional[Dict] = None,
    space_used: Optional[float] = None,
) -> Checkpoint:
    """Assemble a checkpoint from engine state plus the recorded stages.

    ``space_used`` lets a caller pin the boundary-time value when the
    checkpoint is materialized lazily (the engine may have advanced by
    then; everything else here — name→id mapping, fingerprint — is
    static).
    """
    if selected is None:
        selected = records_picked_order(records)
    selected = tuple(selected)
    if space_used is None:
        space_used = float(engine.space_used())
    return Checkpoint(
        algorithm=dict(algorithm),
        fingerprint=engine.fingerprint(),
        space_budget=float(space_budget),
        seed=tuple(seed),
        stage_counter=int(stage_counter),
        selected=selected,
        selected_ids=tuple(engine.structure_id(name) for name in selected),
        space_used=space_used,
        remaining_space=float(space_budget) - space_used,
        stages=tuple(records),
        extra=dict(extra or {}),
    )
