"""Setuptools shim.

Kept so that ``pip install -e . --no-build-isolation --no-use-pep517``
works on machines without the ``wheel`` package (e.g. offline
environments); all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
